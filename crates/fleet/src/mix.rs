//! Workload mixes: which request classes a traffic source draws and how
//! often.
//!
//! The default mixes come from the paper's evaluation workloads (Tables
//! VI/VII via [`zkphire_core::workloads`]): each named workload
//! contributes its published `log2 n` as one class. Weights default to
//! inverse proof size — a proving service fields many small proofs
//! (wallet transfers, single hashes) for every monster rollup — but any
//! weighting can be supplied.

use crate::request::{RequestClass, TenantId};
use crate::rng::SplitMix64;
use zkphire_core::protocol::Gate;
use zkphire_core::workloads::all_workloads;

/// A weighted set of request classes.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    classes: Vec<RequestClass>,
    weights: Vec<f64>,
}

impl WorkloadMix {
    /// A mix from explicit `(class, weight)` pairs.
    pub fn new(entries: Vec<(RequestClass, f64)>) -> Self {
        assert!(!entries.is_empty(), "empty workload mix");
        assert!(
            entries.iter().all(|(_, w)| *w > 0.0),
            "non-positive mix weight"
        );
        let (classes, weights) = entries.into_iter().unzip();
        Self { classes, weights }
    }

    /// A single-class mix (useful for microbenchmarks and tests).
    pub fn single(class: RequestClass) -> Self {
        Self::new(vec![(class, 1.0)])
    }

    /// The Table VII Jellyfish suite, weighted `1 / 2^(mu - mu_min)` so
    /// small proofs dominate the request stream. `max_mu` drops the
    /// largest instances (a `2^27` zkEVM proof is a batch job, not an
    /// interactive request).
    pub fn table_vii_jellyfish(max_mu: usize) -> Self {
        let entries: Vec<(RequestClass, f64)> = all_workloads()
            .iter()
            .filter_map(|w| w.jellyfish_log2)
            .filter(|&mu| mu <= max_mu)
            .map(|mu| (RequestClass::new(Gate::Jellyfish, mu), 1.0))
            .collect();
        Self::inverse_size_weighted(entries)
    }

    /// The Table VI Vanilla suite under the same inverse-size weighting.
    pub fn table_vi_vanilla(max_mu: usize) -> Self {
        let entries: Vec<(RequestClass, f64)> = all_workloads()
            .iter()
            .filter_map(|w| w.vanilla_log2)
            .filter(|&mu| mu <= max_mu)
            .map(|mu| (RequestClass::new(Gate::Vanilla, mu), 1.0))
            .collect();
        Self::inverse_size_weighted(entries)
    }

    /// Both tables combined — the service accepts either arithmetization.
    pub fn tables_vi_vii(max_mu: usize) -> Self {
        let mut entries: Vec<(RequestClass, f64)> = Vec::new();
        for w in all_workloads() {
            if let Some(mu) = w.vanilla_log2 {
                if mu <= max_mu {
                    entries.push((RequestClass::new(Gate::Vanilla, mu), 1.0));
                }
            }
            if let Some(mu) = w.jellyfish_log2 {
                if mu <= max_mu {
                    entries.push((RequestClass::new(Gate::Jellyfish, mu), 1.0));
                }
            }
        }
        Self::inverse_size_weighted(entries)
    }

    fn inverse_size_weighted(mut entries: Vec<(RequestClass, f64)>) -> Self {
        assert!(!entries.is_empty(), "no workloads under the mu cap");
        entries.sort_by_key(|(c, _)| *c);
        entries.dedup_by_key(|(c, _)| *c);
        let mu_min = entries.iter().map(|(c, _)| c.mu).min().unwrap_or_default();
        for (class, weight) in &mut entries {
            *weight = 1.0 / (1u64 << (class.mu - mu_min).min(60)) as f64;
        }
        Self::new(entries)
    }

    /// The distinct classes in this mix.
    pub fn classes(&self) -> &[RequestClass] {
        &self.classes
    }

    /// Draws one class.
    pub fn draw(&self, rng: &mut SplitMix64) -> RequestClass {
        self.classes[rng.next_weighted(&self.weights)]
    }
}

/// One tenant's share of the traffic: its id, its fraction of the
/// arrival stream (`traffic_weight`), its service entitlement under
/// weighted-fair batching (`service_weight`), and what it submits.
#[derive(Clone, Debug)]
pub struct TenantProfile {
    /// Tenant id (unique within a [`TenantMix`]).
    pub tenant: TenantId,
    /// Relative share of arrivals this tenant generates (> 0).
    pub traffic_weight: f64,
    /// Relative service entitlement for fair queueing (> 0).
    pub service_weight: f64,
    /// What this tenant submits.
    pub mix: WorkloadMix,
}

impl TenantProfile {
    /// A profile with equal traffic and service weight.
    pub fn new(tenant: TenantId, weight: f64, mix: WorkloadMix) -> Self {
        Self {
            tenant,
            traffic_weight: weight,
            service_weight: weight,
            mix,
        }
    }

    /// Overrides the service entitlement (builder style).
    pub fn with_service_weight(mut self, w: f64) -> Self {
        self.service_weight = w;
        self
    }
}

/// A multi-tenant traffic description: per-tenant workload mixes plus
/// arrival shares. Drawing yields `(tenant, class)`; a single-tenant
/// mix consumes exactly the same RNG stream as a bare [`WorkloadMix`],
/// so existing single-tenant seeds replay unchanged.
#[derive(Clone, Debug)]
pub struct TenantMix {
    profiles: Vec<TenantProfile>,
    traffic_weights: Vec<f64>,
}

impl TenantMix {
    /// Builds from per-tenant profiles; ids must be unique, weights
    /// positive.
    pub fn new(profiles: Vec<TenantProfile>) -> Self {
        assert!(!profiles.is_empty(), "empty tenant mix");
        for (i, p) in profiles.iter().enumerate() {
            assert!(p.traffic_weight > 0.0, "non-positive traffic weight");
            assert!(p.service_weight > 0.0, "non-positive service weight");
            assert!(
                profiles[..i].iter().all(|q| q.tenant != p.tenant),
                "duplicate tenant id {}",
                p.tenant
            );
        }
        let traffic_weights = profiles.iter().map(|p| p.traffic_weight).collect();
        Self {
            profiles,
            traffic_weights,
        }
    }

    /// The whole stream belongs to tenant 0.
    pub fn single(mix: WorkloadMix) -> Self {
        Self::new(vec![TenantProfile::new(0, 1.0, mix)])
    }

    /// The tenant profiles.
    pub fn profiles(&self) -> &[TenantProfile] {
        &self.profiles
    }

    /// `(tenant, service_weight)` pairs, for fair-queueing policies and
    /// the Jain fairness index.
    pub fn service_weights(&self) -> Vec<(TenantId, f64)> {
        self.profiles
            .iter()
            .map(|p| (p.tenant, p.service_weight))
            .collect()
    }

    /// Draws one arrival's `(tenant, class)`. Single-tenant mixes skip
    /// the tenant draw so their RNG stream matches plain
    /// [`WorkloadMix::draw`].
    pub fn draw(&self, rng: &mut SplitMix64) -> (TenantId, RequestClass) {
        let i = if self.profiles.len() == 1 {
            0
        } else {
            rng.next_weighted(&self.traffic_weights)
        };
        let p = &self.profiles[i];
        (p.tenant, p.mix.draw(rng))
    }
}

impl From<WorkloadMix> for TenantMix {
    fn from(mix: WorkloadMix) -> Self {
        Self::single(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mixes_respect_mu_cap() {
        let mix = WorkloadMix::table_vii_jellyfish(21);
        assert!(!mix.classes().is_empty());
        assert!(mix.classes().iter().all(|c| c.mu <= 21));
        assert!(mix.classes().iter().all(|c| c.gate == Gate::Jellyfish));
    }

    #[test]
    fn combined_mix_has_both_gates() {
        let mix = WorkloadMix::tables_vi_vii(22);
        assert!(mix.classes().iter().any(|c| c.gate == Gate::Vanilla));
        assert!(mix.classes().iter().any(|c| c.gate == Gate::Jellyfish));
    }

    #[test]
    fn small_classes_drawn_more_often() {
        let mix = WorkloadMix::table_vii_jellyfish(20);
        let mu_min = mix.classes().iter().map(|c| c.mu).min().unwrap();
        let mu_max = mix.classes().iter().map(|c| c.mu).max().unwrap();
        assert!(mu_min < mu_max);
        let mut rng = SplitMix64::new(5);
        let mut small = 0usize;
        let mut large = 0usize;
        for _ in 0..4000 {
            let c = mix.draw(&mut rng);
            if c.mu == mu_min {
                small += 1;
            } else if c.mu == mu_max {
                large += 1;
            }
        }
        assert!(small > large, "small {small} large {large}");
    }

    #[test]
    fn draw_is_deterministic() {
        let mix = WorkloadMix::tables_vi_vii(24);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(mix.draw(&mut a), mix.draw(&mut b));
        }
    }

    #[test]
    fn single_tenant_preserves_workload_stream() {
        // TenantMix::single must consume exactly the RNG draws a bare
        // WorkloadMix does, so single-tenant seeds replay unchanged.
        let mix = WorkloadMix::tables_vi_vii(22);
        let tm = TenantMix::single(mix.clone());
        let mut a = SplitMix64::new(17);
        let mut b = SplitMix64::new(17);
        for _ in 0..200 {
            let (tenant, class) = tm.draw(&mut a);
            assert_eq!(tenant, 0);
            assert_eq!(class, mix.draw(&mut b));
        }
    }

    #[test]
    fn tenant_draw_tracks_traffic_weights() {
        use zkphire_core::protocol::Gate;
        let small = WorkloadMix::single(crate::request::RequestClass::new(Gate::Jellyfish, 16));
        let tm = TenantMix::new(vec![
            TenantProfile::new(1, 3.0, small.clone()),
            TenantProfile::new(2, 1.0, small),
        ]);
        let mut rng = SplitMix64::new(4);
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            let (t, _) = tm.draw(&mut rng);
            counts[(t - 1) as usize] += 1;
        }
        // Tenant 1 offers 3× tenant 2's traffic.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "duplicate tenant")]
    fn duplicate_tenant_ids_rejected() {
        let m = WorkloadMix::table_vii_jellyfish(20);
        TenantMix::new(vec![
            TenantProfile::new(1, 1.0, m.clone()),
            TenantProfile::new(1, 1.0, m),
        ]);
    }
}
