//! `zkphire-fleet`: a deterministic discrete-event simulator (DES) of a
//! proof-serving fleet built from zkPHIRE chips.
//!
//! The paper models one chip proving one HyperPlonk instance; a
//! production proving service is a *throughput* system — thousands of
//! requests per second from millions of users, against a latency SLO.
//! This crate answers the operator questions the single-chip model
//! cannot: how many chips, what batching policy, what p99?
//!
//! # DES design
//!
//! The simulator is an event loop over a binary-heap future-event list
//! ([`events::EventQueue`]). Two event kinds exist: a request arrival
//! and a chip finishing its batch. Every tie on the f64 timestamp is
//! broken by a monotone sequence number, and every random draw comes
//! from an explicitly seeded [`rng::SplitMix64`] stream — no wall
//! clock, no OS entropy — so a run is a pure function of
//! `(config, seed)` and two runs with the same seed produce
//! byte-identical traces ([`sim::SimReport::trace_hash`]).
//!
//! The pipeline per event:
//!
//! ```text
//! arrivals ──► admission ──► batching policy ──► chip pool ──► records
//! (Poisson,    (queue cap)   (FIFO | size-class  (N × zkPHIRE)  (SLO
//!  ON/OFF,                    | EDF)                            metrics)
//!  trace)
//! ```
//!
//! * **Arrivals** ([`arrivals`]) are open-loop: Poisson, bursty ON/OFF
//!   (interrupted Poisson), or a replayed trace. Each request draws a
//!   class `(gate, log2 n)` from a [`mix::WorkloadMix`] built on the
//!   paper's Tables VI/VII workloads.
//! * **Admission** optionally bounds the queue; overflow is rejected
//!   and counted (a real service sheds load rather than queue without
//!   bound).
//! * **Batching** ([`policy`]) groups same-class requests so a chip
//!   pays its per-batch reconfiguration (§III-E program load) once per
//!   batch instead of once per proof.
//! * **Service times** come from the paper's own cycle model: a batch
//!   of requests costs `overhead + Σ simulate_protocol(gate, mu)` via
//!   [`zkphire_core::costdb::CostModel`], which memoizes the analytical
//!   five-step HyperPlonk schedule per `(gate, mu)` class — the DES
//!   issues millions of cost queries but evaluates the protocol model
//!   once per distinct class.
//! * **Metrics** ([`metrics`]) reduce completion records to SLO facts:
//!   throughput, per-chip utilization, queue depth, and exact
//!   nearest-rank p50/p95/p99 latency quantiles.
//!
//! # Example
//!
//! ```
//! use zkphire_fleet::{simulate_poisson_fleet, PolicyKind};
//!
//! // 4 exemplar chips, 50 proofs/s of Tables VI/VII traffic, 2 s.
//! let report = simulate_poisson_fleet(4, 50.0, 2_000.0, PolicyKind::SizeClass, 1);
//! assert!(report.summary.completed > 0);
//! assert!(report.summary.mean_utilization > 0.0);
//! assert!(report.summary.p99_latency_ms >= report.summary.p50_latency_ms);
//! ```

pub mod arrivals;
pub mod events;
pub mod metrics;
pub mod mix;
pub mod policy;
pub mod request;
pub mod rng;
pub mod sim;

pub use arrivals::{ArrivalSource, OnOffSource, PoissonSource, TraceSource};
pub use events::{Event, EventQueue};
pub use metrics::{quantile, quantile_sorted, FleetSummary};
pub use mix::WorkloadMix;
pub use policy::{BatchPolicy, EdfPolicy, FifoPolicy, PolicyKind, SizeClassPolicy};
pub use request::{Request, RequestClass, RequestRecord};
pub use rng::SplitMix64;
pub use sim::{
    simulate, simulate_poisson_fleet, uniform_trace, FleetConfig, SimReport, TraceEntry,
};
