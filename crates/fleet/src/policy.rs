//! Admission and batching policies: how queued requests become chip
//! batches.
//!
//! A batch is a run of same-class requests served back-to-back on one
//! chip; the chip pays one reconfiguration overhead per batch (program
//! load, FSM setup — §III-E program swap), so batching same-class work
//! trades queueing delay for amortized overhead. Three policies:
//!
//! * [`FifoPolicy`] — strict arrival order; a batch is the head request
//!   plus immediately following requests of the same class, so service
//!   order equals arrival order.
//! * [`SizeClassPolicy`] — one FIFO lane per `(gate, log2 n)` class;
//!   dispatch picks the lane with the oldest head (no starvation) and
//!   drains up to `max_batch` from it.
//! * [`EdfPolicy`] — earliest-deadline-first: picks the most urgent
//!   request, then fills the batch with same-class requests in deadline
//!   order.

use std::collections::{BTreeMap, VecDeque};

use crate::request::{Request, RequestClass};

/// Which policy a simulation runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Strict FIFO with head-run coalescing.
    Fifo,
    /// Per-size-class lanes, oldest-head-first.
    SizeClass,
    /// Earliest deadline first.
    EarliestDeadline,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn BatchPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(FifoPolicy::default()),
            PolicyKind::SizeClass => Box::new(SizeClassPolicy::default()),
            PolicyKind::EarliestDeadline => Box::new(EdfPolicy::default()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::SizeClass => "size-class",
            PolicyKind::EarliestDeadline => "edf",
        }
    }
}

/// A queueing discipline over admitted requests.
pub trait BatchPolicy {
    /// Admits one request to the queue.
    fn push(&mut self, req: Request);

    /// Removes and returns the next batch (same-class, at most
    /// `max_batch` requests), or `None` when the queue is empty.
    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>>;

    /// Requests currently queued.
    fn depth(&self) -> usize;
}

/// See [`PolicyKind::Fifo`].
#[derive(Clone, Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<Request>,
}

impl BatchPolicy for FifoPolicy {
    fn push(&mut self, req: Request) {
        self.queue.push_back(req);
    }

    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>> {
        let head = self.queue.pop_front()?;
        let class = head.class;
        let mut batch = vec![head];
        while batch.len() < max_batch {
            match self.queue.front() {
                Some(next) if next.class == class => {
                    batch.push(self.queue.pop_front().expect("front checked"));
                }
                _ => break,
            }
        }
        Some(batch)
    }

    fn depth(&self) -> usize {
        self.queue.len()
    }
}

/// See [`PolicyKind::SizeClass`].
#[derive(Clone, Debug, Default)]
pub struct SizeClassPolicy {
    lanes: BTreeMap<RequestClass, VecDeque<Request>>,
    depth: usize,
}

impl BatchPolicy for SizeClassPolicy {
    fn push(&mut self, req: Request) {
        self.lanes.entry(req.class).or_default().push_back(req);
        self.depth += 1;
    }

    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>> {
        // The lane whose head has waited longest (ties: lowest id, which
        // is unique, so selection is total).
        let best_class = self
            .lanes
            .iter()
            .filter_map(|(class, lane)| lane.front().map(|h| (h.arrival_ms, h.id, *class)))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("NaN arrival")
                    .then(a.1.cmp(&b.1))
            })
            .map(|(_, _, class)| class)?;
        let lane = self.lanes.get_mut(&best_class).expect("lane exists");
        let take = lane.len().min(max_batch.max(1));
        let batch: Vec<Request> = lane.drain(..take).collect();
        if lane.is_empty() {
            self.lanes.remove(&best_class);
        }
        self.depth -= batch.len();
        Some(batch)
    }

    fn depth(&self) -> usize {
        self.depth
    }
}

/// See [`PolicyKind::EarliestDeadline`].
#[derive(Clone, Debug, Default)]
pub struct EdfPolicy {
    queue: Vec<Request>,
}

impl EdfPolicy {
    /// Index of the most urgent request: min `(deadline, id)`.
    fn most_urgent(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.deadline_ms
                    .partial_cmp(&b.deadline_ms)
                    .expect("NaN deadline")
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
    }
}

impl BatchPolicy for EdfPolicy {
    fn push(&mut self, req: Request) {
        self.queue.push(req);
    }

    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>> {
        let urgent = self.most_urgent()?;
        let head = self.queue.swap_remove(urgent);
        let class = head.class;
        // Same-class companions in deadline order.
        let mut companions: Vec<usize> = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, r)| r.class == class)
            .map(|(i, _)| i)
            .collect();
        companions.sort_by(|&a, &b| {
            self.queue[a]
                .deadline_ms
                .partial_cmp(&self.queue[b].deadline_ms)
                .expect("NaN deadline")
                .then(self.queue[a].id.cmp(&self.queue[b].id))
        });
        companions.truncate(max_batch.max(1) - 1);
        // Remove back-to-front so indices stay valid.
        companions.sort_unstable_by(|a, b| b.cmp(a));
        let mut batch = vec![head];
        for i in companions {
            batch.push(self.queue.swap_remove(i));
        }
        // Keep the batch itself in deadline order (head first already).
        batch[1..].sort_by(|a, b| {
            a.deadline_ms
                .partial_cmp(&b.deadline_ms)
                .expect("NaN deadline")
                .then(a.id.cmp(&b.id))
        });
        Some(batch)
    }

    fn depth(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_core::protocol::Gate;

    fn req(id: u64, gate: Gate, mu: usize, arrival: f64, deadline: f64) -> Request {
        Request {
            id,
            class: RequestClass::new(gate, mu),
            arrival_ms: arrival,
            deadline_ms: deadline,
        }
    }

    #[test]
    fn fifo_coalesces_head_run_only() {
        let mut p = FifoPolicy::default();
        p.push(req(0, Gate::Jellyfish, 18, 0.0, 10.0));
        p.push(req(1, Gate::Jellyfish, 18, 1.0, 11.0));
        p.push(req(2, Gate::Vanilla, 20, 2.0, 12.0));
        p.push(req(3, Gate::Jellyfish, 18, 3.0, 13.0));
        let b1 = p.pop_batch(8).unwrap();
        assert_eq!(b1.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        let b2 = p.pop_batch(8).unwrap();
        assert_eq!(b2.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        let b3 = p.pop_batch(8).unwrap();
        assert_eq!(b3.iter().map(|r| r.id).collect::<Vec<_>>(), vec![3]);
        assert!(p.pop_batch(8).is_none());
    }

    #[test]
    fn size_class_batches_across_interleaving() {
        let mut p = SizeClassPolicy::default();
        p.push(req(0, Gate::Jellyfish, 18, 0.0, 10.0));
        p.push(req(1, Gate::Vanilla, 20, 0.5, 10.0));
        p.push(req(2, Gate::Jellyfish, 18, 1.0, 10.0));
        p.push(req(3, Gate::Jellyfish, 18, 1.5, 10.0));
        assert_eq!(p.depth(), 4);
        // Oldest head is request 0's lane; the whole lane drains FIFO.
        let b1 = p.pop_batch(8).unwrap();
        assert_eq!(b1.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2, 3]);
        let b2 = p.pop_batch(8).unwrap();
        assert_eq!(b2.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn size_class_respects_max_batch() {
        let mut p = SizeClassPolicy::default();
        for i in 0..5 {
            p.push(req(i, Gate::Jellyfish, 18, i as f64, 100.0));
        }
        let b = p.pop_batch(2).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn edf_serves_most_urgent_first() {
        let mut p = EdfPolicy::default();
        p.push(req(0, Gate::Jellyfish, 18, 0.0, 50.0));
        p.push(req(1, Gate::Vanilla, 22, 1.0, 5.0));
        p.push(req(2, Gate::Jellyfish, 18, 2.0, 40.0));
        let b1 = p.pop_batch(8).unwrap();
        assert_eq!(b1[0].id, 1);
        assert_eq!(b1.len(), 1);
        let b2 = p.pop_batch(8).unwrap();
        assert_eq!(b2.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2, 0]);
    }
}
