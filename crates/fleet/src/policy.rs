//! Admission and batching policies: how queued requests become chip
//! batches.
//!
//! A batch is a run of same-class requests served back-to-back on one
//! chip; the chip pays one reconfiguration overhead per batch (program
//! load, FSM setup — §III-E program swap), so batching same-class work
//! trades queueing delay for amortized overhead. Three policies:
//!
//! * [`FifoPolicy`] — strict arrival order; a batch is the head request
//!   plus immediately following requests of the same class, so service
//!   order equals arrival order.
//! * [`SizeClassPolicy`] — one FIFO lane per `(gate, log2 n)` class;
//!   dispatch picks the lane with the oldest head (no starvation) and
//!   drains up to `max_batch` from it.
//! * [`EdfPolicy`] — earliest-deadline-first: picks the most urgent
//!   request, then fills the batch with same-class requests in deadline
//!   order.
//! * [`WeightedFairPolicy`] — deficit round-robin over per-tenant
//!   queues: under contention each tenant's served-request share tracks
//!   its service weight, so one noisy tenant cannot starve the rest.

use std::collections::{BTreeMap, VecDeque};

use crate::request::{Request, RequestClass, TenantId};

/// Which policy a simulation runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Strict FIFO with head-run coalescing.
    Fifo,
    /// Per-size-class lanes, oldest-head-first.
    SizeClass,
    /// Earliest deadline first.
    EarliestDeadline,
    /// Deficit round-robin over per-tenant queues; weights come from
    /// [`crate::sim::FleetConfig::tenant_weights`] (absent tenants
    /// weigh 1).
    WeightedFair,
}

impl PolicyKind {
    /// Instantiates the policy with all tenants weighted equally. The
    /// box is `Send` so the same policies that batch the DES also batch
    /// the live `zkphire-serve` dispatcher across real threads.
    pub fn build(self) -> Box<dyn BatchPolicy + Send> {
        self.build_with(&[])
    }

    /// Instantiates the policy with explicit per-tenant service
    /// weights (only [`PolicyKind::WeightedFair`] consults them).
    pub fn build_with(self, tenant_weights: &[(TenantId, f64)]) -> Box<dyn BatchPolicy + Send> {
        match self {
            PolicyKind::Fifo => Box::new(FifoPolicy::default()),
            PolicyKind::SizeClass => Box::new(SizeClassPolicy::default()),
            PolicyKind::EarliestDeadline => Box::new(EdfPolicy::default()),
            PolicyKind::WeightedFair => Box::new(WeightedFairPolicy::new(tenant_weights.to_vec())),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::SizeClass => "size-class",
            PolicyKind::EarliestDeadline => "edf",
            PolicyKind::WeightedFair => "weighted-fair",
        }
    }
}

/// A queueing discipline over admitted requests.
pub trait BatchPolicy {
    /// Admits one request to the queue.
    fn push(&mut self, req: Request);

    /// Removes and returns the next batch (same-class, at most
    /// `max_batch` requests), or `None` when the queue is empty.
    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>>;

    /// Requests currently queued.
    fn depth(&self) -> usize;

    /// Removes and returns up to `n` queued requests with the *latest*
    /// deadlines (ties broken by highest id, so the shed set is a total
    /// order) — the brown-out shedding hook: under capacity loss the
    /// simulator trims the queue by sacrificing the work most able to
    /// absorb the delay.
    fn drain_latest_deadline(&mut self, n: usize) -> Vec<Request>;
}

/// Index of the entry with the latest `(deadline, id)` — the shared
/// victim-selection rule for brown-out shedding.
fn latest_deadline_idx<'a, I>(iter: I) -> Option<usize>
where
    I: Iterator<Item = &'a Request>,
{
    iter.enumerate()
        .max_by(|(_, a), (_, b)| {
            a.deadline_ms
                .total_cmp(&b.deadline_ms)
                .then(a.id.cmp(&b.id))
        })
        .map(|(i, _)| i)
}

/// See [`PolicyKind::Fifo`].
#[derive(Clone, Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<Request>,
}

impl BatchPolicy for FifoPolicy {
    fn push(&mut self, req: Request) {
        self.queue.push_back(req);
    }

    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>> {
        let head = self.queue.pop_front()?;
        let class = head.class;
        let mut batch = vec![head];
        while batch.len() < max_batch && self.queue.front().is_some_and(|n| n.class == class) {
            let Some(next) = self.queue.pop_front() else {
                break;
            };
            batch.push(next);
        }
        Some(batch)
    }

    fn depth(&self) -> usize {
        self.queue.len()
    }

    fn drain_latest_deadline(&mut self, n: usize) -> Vec<Request> {
        let mut shed = Vec::new();
        while shed.len() < n {
            let Some(idx) = latest_deadline_idx(self.queue.iter()) else {
                break;
            };
            let Some(victim) = self.queue.remove(idx) else {
                break;
            };
            shed.push(victim);
        }
        shed
    }
}

/// See [`PolicyKind::SizeClass`].
#[derive(Clone, Debug, Default)]
pub struct SizeClassPolicy {
    lanes: BTreeMap<RequestClass, VecDeque<Request>>,
    depth: usize,
}

impl BatchPolicy for SizeClassPolicy {
    fn push(&mut self, req: Request) {
        self.lanes.entry(req.class).or_default().push_back(req);
        self.depth += 1;
    }

    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>> {
        // The lane whose head has waited longest (ties: lowest id, which
        // is unique, so selection is total).
        let best_class = self
            .lanes
            .iter()
            .filter_map(|(class, lane)| lane.front().map(|h| (h.arrival_ms, h.id, *class)))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, _, class)| class)?;
        let lane = self.lanes.get_mut(&best_class)?;
        let take = lane.len().min(max_batch.max(1));
        let batch: Vec<Request> = lane.drain(..take).collect();
        if lane.is_empty() {
            self.lanes.remove(&best_class);
        }
        self.depth -= batch.len();
        Some(batch)
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn drain_latest_deadline(&mut self, n: usize) -> Vec<Request> {
        let mut shed = Vec::new();
        while shed.len() < n && self.depth > 0 {
            // The latest-deadline request across all lanes.
            let victim = self
                .lanes
                .iter()
                .flat_map(|(class, lane)| {
                    latest_deadline_idx(lane.iter()).map(|i| (*class, i, &lane[i]))
                })
                .max_by(|(_, _, a), (_, _, b)| {
                    a.deadline_ms
                        .total_cmp(&b.deadline_ms)
                        .then(a.id.cmp(&b.id))
                })
                .map(|(class, i, _)| (class, i));
            let Some((class, idx)) = victim else { break };
            let Some(lane) = self.lanes.get_mut(&class) else {
                break;
            };
            let Some(victim) = lane.remove(idx) else {
                break;
            };
            shed.push(victim);
            if lane.is_empty() {
                self.lanes.remove(&class);
            }
            self.depth -= 1;
        }
        shed
    }
}

/// See [`PolicyKind::EarliestDeadline`].
#[derive(Clone, Debug, Default)]
pub struct EdfPolicy {
    queue: Vec<Request>,
}

impl EdfPolicy {
    /// Index of the most urgent request: min `(deadline, id)`.
    fn most_urgent(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.deadline_ms
                    .total_cmp(&b.deadline_ms)
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
    }
}

impl BatchPolicy for EdfPolicy {
    fn push(&mut self, req: Request) {
        self.queue.push(req);
    }

    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>> {
        let urgent = self.most_urgent()?;
        let head = self.queue.swap_remove(urgent);
        let class = head.class;
        // Same-class companions in deadline order.
        let mut companions: Vec<usize> = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, r)| r.class == class)
            .map(|(i, _)| i)
            .collect();
        companions.sort_by(|&a, &b| {
            self.queue[a]
                .deadline_ms
                .total_cmp(&self.queue[b].deadline_ms)
                .then(self.queue[a].id.cmp(&self.queue[b].id))
        });
        companions.truncate(max_batch.max(1) - 1);
        // Remove back-to-front so indices stay valid.
        companions.sort_unstable_by(|a, b| b.cmp(a));
        let mut batch = vec![head];
        for i in companions {
            batch.push(self.queue.swap_remove(i));
        }
        // Keep the batch itself in deadline order (head first already).
        batch[1..].sort_by(|a, b| {
            a.deadline_ms
                .total_cmp(&b.deadline_ms)
                .then(a.id.cmp(&b.id))
        });
        Some(batch)
    }

    fn depth(&self) -> usize {
        self.queue.len()
    }

    fn drain_latest_deadline(&mut self, n: usize) -> Vec<Request> {
        let mut shed = Vec::new();
        while shed.len() < n {
            let Some(idx) = latest_deadline_idx(self.queue.iter()) else {
                break;
            };
            shed.push(self.queue.swap_remove(idx));
        }
        shed
    }
}

/// See [`PolicyKind::WeightedFair`]: deficit round-robin (Shreedhar &
/// Varghese) over per-tenant FIFO queues, the service cost of a request
/// being one unit. Each visit credits a tenant `quantum × weight`;
/// serving spends one credit per request, so over any contended window
/// tenant `i` is served in proportion to `weight_i`. Within a tenant,
/// order is FIFO with head-run coalescing (same mechanics as
/// [`FifoPolicy`]) so batches stay same-class.
#[derive(Clone, Debug)]
pub struct WeightedFairPolicy {
    queues: BTreeMap<TenantId, VecDeque<Request>>,
    /// Deficit credit per active tenant.
    deficits: BTreeMap<TenantId, f64>,
    /// Configured service weights; absent tenants weigh 1.
    weights: BTreeMap<TenantId, f64>,
    /// Round-robin rotation over tenants with queued work.
    rotation: VecDeque<TenantId>,
    /// Whether the rotation's front tenant already received this
    /// round's credit.
    front_credited: bool,
    depth: usize,
}

impl Default for WeightedFairPolicy {
    fn default() -> Self {
        Self::new(Vec::new())
    }
}

impl WeightedFairPolicy {
    /// Builds with explicit `(tenant, weight)` entitlements; weights
    /// must be positive, tenants not listed weigh 1.
    pub fn new(tenant_weights: Vec<(TenantId, f64)>) -> Self {
        let mut weights = BTreeMap::new();
        for (tenant, w) in tenant_weights {
            assert!(w > 0.0, "non-positive service weight for tenant {tenant}");
            weights.insert(tenant, w);
        }
        Self {
            queues: BTreeMap::new(),
            deficits: BTreeMap::new(),
            weights,
            rotation: VecDeque::new(),
            front_credited: false,
            depth: 0,
        }
    }

    fn weight(&self, tenant: TenantId) -> f64 {
        self.weights.get(&tenant).copied().unwrap_or(1.0)
    }
}

impl BatchPolicy for WeightedFairPolicy {
    fn push(&mut self, req: Request) {
        let q = self.queues.entry(req.tenant).or_default();
        if q.is_empty() {
            // Re-entering the rotation starts with zero credit, so an
            // idle tenant cannot bank service time.
            self.rotation.push_back(req.tenant);
            self.deficits.insert(req.tenant, 0.0);
        }
        q.push_back(req);
        self.depth += 1;
    }

    fn pop_batch(&mut self, max_batch: usize) -> Option<Vec<Request>> {
        if self.depth == 0 {
            return None;
        }
        // One round visits the front tenant, credits it
        // `weight × max_batch` requests once, and serves it until the
        // credit runs dry (possibly across several pop_batch calls) —
        // then the rotation advances. High-weight tenants emit several
        // full batches per round, low-weight tenants wait several
        // rounds per batch, and leftover credit at rotation is always
        // < 1, so no tenant banks service across rounds.
        let quantum = max_batch.max(1) as f64;
        loop {
            // depth > 0 implies a non-empty rotation with live deficit
            // and queue entries; a desync here surfaces as `None`, which
            // the engine reports as a typed invariant failure instead of
            // panicking mid-dispatch.
            let tenant = self.rotation.front().copied()?;
            let weight = self.weight(tenant);
            let deficit = self.deficits.get_mut(&tenant)?;
            if !self.front_credited {
                *deficit += quantum * weight;
                self.front_credited = true;
            }
            if *deficit < 1.0 {
                // This round's credit does not cover a request; next
                // tenant. Weights are positive, so the credit crosses 1
                // after finitely many rounds — no starvation.
                self.rotation.rotate_left(1);
                self.front_credited = false;
                continue;
            }
            let allowance = (*deficit).floor() as usize;
            let q = self.queues.get_mut(&tenant)?;
            let head = q.pop_front()?;
            let class = head.class;
            let cap = max_batch.max(1).min(allowance);
            let mut batch = vec![head];
            while batch.len() < cap && q.front().is_some_and(|n| n.class == class) {
                let Some(next) = q.pop_front() else {
                    break;
                };
                batch.push(next);
            }
            *deficit -= batch.len() as f64;
            self.depth -= batch.len();
            if q.is_empty() {
                self.queues.remove(&tenant);
                self.deficits.remove(&tenant);
                self.rotation.pop_front();
                self.front_credited = false;
            } else if *deficit < 1.0 {
                self.rotation.rotate_left(1);
                self.front_credited = false;
            }
            return Some(batch);
        }
    }

    fn depth(&self) -> usize {
        self.depth
    }

    fn drain_latest_deadline(&mut self, n: usize) -> Vec<Request> {
        let mut shed = Vec::new();
        while shed.len() < n && self.depth > 0 {
            // The latest-deadline request across all tenant queues.
            let victim = self
                .queues
                .iter()
                .flat_map(|(tenant, q)| latest_deadline_idx(q.iter()).map(|i| (*tenant, i, &q[i])))
                .max_by(|(_, _, a), (_, _, b)| {
                    a.deadline_ms
                        .total_cmp(&b.deadline_ms)
                        .then(a.id.cmp(&b.id))
                })
                .map(|(tenant, i, _)| (tenant, i));
            let Some((tenant, idx)) = victim else { break };
            let Some(q) = self.queues.get_mut(&tenant) else {
                break;
            };
            let Some(victim) = q.remove(idx) else {
                break;
            };
            shed.push(victim);
            self.depth -= 1;
            if q.is_empty() {
                // Drop the drained tenant from the rotation, resetting
                // the round credit when it was the front (the next
                // front starts a fresh round, same as in pop_batch).
                self.queues.remove(&tenant);
                self.deficits.remove(&tenant);
                if let Some(pos) = self.rotation.iter().position(|&t| t == tenant) {
                    self.rotation.remove(pos);
                    if pos == 0 {
                        self.front_credited = false;
                    }
                }
            }
        }
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_core::protocol::Gate;

    fn req(id: u64, gate: Gate, mu: usize, arrival: f64, deadline: f64) -> Request {
        tenant_req(id, 0, gate, mu, arrival, deadline)
    }

    fn tenant_req(
        id: u64,
        tenant: TenantId,
        gate: Gate,
        mu: usize,
        arrival: f64,
        deadline: f64,
    ) -> Request {
        Request {
            id,
            tenant,
            class: RequestClass::new(gate, mu),
            arrival_ms: arrival,
            deadline_ms: deadline,
            attempts: 0,
        }
    }

    #[test]
    fn fifo_coalesces_head_run_only() {
        let mut p = FifoPolicy::default();
        p.push(req(0, Gate::Jellyfish, 18, 0.0, 10.0));
        p.push(req(1, Gate::Jellyfish, 18, 1.0, 11.0));
        p.push(req(2, Gate::Vanilla, 20, 2.0, 12.0));
        p.push(req(3, Gate::Jellyfish, 18, 3.0, 13.0));
        let b1 = p.pop_batch(8).unwrap();
        assert_eq!(b1.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        let b2 = p.pop_batch(8).unwrap();
        assert_eq!(b2.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        let b3 = p.pop_batch(8).unwrap();
        assert_eq!(b3.iter().map(|r| r.id).collect::<Vec<_>>(), vec![3]);
        assert!(p.pop_batch(8).is_none());
    }

    #[test]
    fn size_class_batches_across_interleaving() {
        let mut p = SizeClassPolicy::default();
        p.push(req(0, Gate::Jellyfish, 18, 0.0, 10.0));
        p.push(req(1, Gate::Vanilla, 20, 0.5, 10.0));
        p.push(req(2, Gate::Jellyfish, 18, 1.0, 10.0));
        p.push(req(3, Gate::Jellyfish, 18, 1.5, 10.0));
        assert_eq!(p.depth(), 4);
        // Oldest head is request 0's lane; the whole lane drains FIFO.
        let b1 = p.pop_batch(8).unwrap();
        assert_eq!(b1.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2, 3]);
        let b2 = p.pop_batch(8).unwrap();
        assert_eq!(b2.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn size_class_respects_max_batch() {
        let mut p = SizeClassPolicy::default();
        for i in 0..5 {
            p.push(req(i, Gate::Jellyfish, 18, i as f64, 100.0));
        }
        let b = p.pop_batch(2).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn drr_alternates_equal_weight_tenants() {
        let mut p = WeightedFairPolicy::default();
        // Tenant 1 floods first; tenant 2 queues two requests after.
        for i in 0..6 {
            p.push(tenant_req(i, 1, Gate::Jellyfish, 18, i as f64, 100.0));
        }
        p.push(tenant_req(6, 2, Gate::Vanilla, 20, 6.0, 100.0));
        p.push(tenant_req(7, 2, Gate::Vanilla, 20, 7.0, 100.0));
        // With batch cap 1 and equal weights, service alternates once
        // tenant 2 is active instead of draining tenant 1 first.
        let order: Vec<TenantId> = std::iter::from_fn(|| p.pop_batch(1))
            .map(|b| b[0].tenant)
            .collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 1, 1, 1]);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn drr_share_tracks_weights_under_contention() {
        // Tenant 1 weighs 3, tenant 2 weighs 1; both have deep backlogs.
        let mut p = WeightedFairPolicy::new(vec![(1, 3.0), (2, 1.0)]);
        for i in 0..400 {
            p.push(tenant_req(i, 1, Gate::Jellyfish, 18, i as f64, 1e9));
            p.push(tenant_req(400 + i, 2, Gate::Jellyfish, 18, i as f64, 1e9));
        }
        // Serve the first 200 requests and count the split.
        let mut served = [0usize; 2];
        let mut total = 0;
        while total < 200 {
            let b = p.pop_batch(4).unwrap();
            served[(b[0].tenant - 1) as usize] += b.len();
            total += b.len();
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((2.0..4.5).contains(&ratio), "served {served:?}");
    }

    #[test]
    fn drr_fractional_weight_not_starved() {
        // A 0.25-weight tenant needs four rotation visits per request
        // but must still be served.
        let mut p = WeightedFairPolicy::new(vec![(1, 1.0), (2, 0.25)]);
        for i in 0..12 {
            p.push(tenant_req(i, 1, Gate::Jellyfish, 18, i as f64, 1e9));
        }
        p.push(tenant_req(12, 2, Gate::Vanilla, 20, 0.5, 1e9));
        let mut tenants = Vec::new();
        while let Some(b) = p.pop_batch(1) {
            tenants.push(b[0].tenant);
        }
        assert_eq!(tenants.len(), 13);
        assert!(
            tenants.contains(&2),
            "low-weight tenant starved: {tenants:?}"
        );
    }

    #[test]
    fn drr_batches_stay_same_class_and_fifo_within_tenant() {
        let mut p = WeightedFairPolicy::default();
        p.push(tenant_req(0, 5, Gate::Jellyfish, 18, 0.0, 1e9));
        p.push(tenant_req(1, 5, Gate::Jellyfish, 18, 1.0, 1e9));
        p.push(tenant_req(2, 5, Gate::Vanilla, 20, 2.0, 1e9));
        let b = p.pop_batch(8).unwrap();
        assert_eq!(b.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        let b = p.pop_batch(8).unwrap();
        assert_eq!(b.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        assert!(p.pop_batch(8).is_none());
    }

    #[test]
    fn shed_takes_latest_deadlines_first_under_every_policy() {
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::SizeClass,
            PolicyKind::EarliestDeadline,
            PolicyKind::WeightedFair,
        ] {
            let mut p = kind.build();
            // Deadlines 10, 20, ..., 60 over two tenants and classes.
            for i in 0..6u64 {
                p.push(tenant_req(
                    i,
                    (i % 2) as TenantId,
                    if i % 2 == 0 {
                        Gate::Jellyfish
                    } else {
                        Gate::Vanilla
                    },
                    18,
                    i as f64,
                    10.0 * (i + 1) as f64,
                ));
            }
            let shed = p.drain_latest_deadline(2);
            let mut ids: Vec<u64> = shed.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![4, 5], "{kind:?} shed the wrong victims");
            assert_eq!(p.depth(), 4, "{kind:?} depth after shed");
            // Over-asking drains the queue and stops.
            let rest = p.drain_latest_deadline(100);
            assert_eq!(rest.len(), 4, "{kind:?}");
            assert_eq!(p.depth(), 0, "{kind:?}");
            assert!(p.pop_batch(8).is_none(), "{kind:?} queue not empty");
        }
    }

    #[test]
    fn drr_survives_shedding_mid_rotation() {
        // Shedding the front tenant's whole queue mid-round must not
        // corrupt the rotation: subsequent pops serve the survivor.
        let mut p = WeightedFairPolicy::default();
        p.push(tenant_req(0, 1, Gate::Jellyfish, 18, 0.0, 500.0));
        p.push(tenant_req(1, 1, Gate::Jellyfish, 18, 1.0, 600.0));
        p.push(tenant_req(2, 2, Gate::Vanilla, 20, 2.0, 50.0));
        // Start tenant 1's round, leaving it credited at the front.
        let b = p.pop_batch(1).unwrap();
        assert_eq!(b[0].tenant, 1);
        // Shed tenant 1's remaining request (latest deadline = id 1).
        let shed = p.drain_latest_deadline(1);
        assert_eq!(shed[0].id, 1);
        let b = p.pop_batch(1).unwrap();
        assert_eq!(b[0].id, 2);
        assert_eq!(p.depth(), 0);
        assert!(p.pop_batch(1).is_none());
    }

    #[test]
    fn edf_serves_most_urgent_first() {
        let mut p = EdfPolicy::default();
        p.push(req(0, Gate::Jellyfish, 18, 0.0, 50.0));
        p.push(req(1, Gate::Vanilla, 22, 1.0, 5.0));
        p.push(req(2, Gate::Jellyfish, 18, 2.0, 40.0));
        let b1 = p.pop_batch(8).unwrap();
        assert_eq!(b1[0].id, 1);
        assert_eq!(b1.len(), 1);
        let b2 = p.pop_batch(8).unwrap();
        assert_eq!(b2.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2, 0]);
    }
}
