//! Fault injection, retry, and graceful degradation for the fleet DES.
//!
//! A production proving service sized by `zkphire-dse` does not get to
//! assume chips never die: at deployment scale, chip faults, the
//! retries they trigger, and overload shedding dominate tail latency.
//! This module supplies the three policy objects the simulator composes
//! into a resilience layer:
//!
//! * [`FaultModel`] — when chips break and how long repair takes.
//!   Either a memoryless MTBF/MTTR process (exponential draws from a
//!   dedicated [`SplitMix64`] stream, so fault timing is a pure
//!   function of the fault seed) or a scripted outage list for
//!   controlled experiments ("chip 0 out from 3 s to 5 s").
//! * [`RetryPolicy`] — what happens to work a failure or deadline
//!   expiry took down: capped exponential backoff with deterministic
//!   jitter and a per-request attempt budget; requests over budget are
//!   *lost* (a terminal outcome, distinct from rejection).
//! * [`BrownOutConfig`] — graceful degradation: when surviving
//!   capacity drops below a threshold, the queue is trimmed by
//!   shedding the latest-deadline work so the remaining requests keep
//!   their SLO instead of everyone missing it together.
//!
//! All three are deterministic: two runs with identical configs and
//! seeds replay the same failures, the same backoff jitter, and the
//! same shed set, bit for bit.

use crate::rng::SplitMix64;

/// One planned outage of [`FaultKind::Scripted`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChipOutage {
    /// Pool slot that fails.
    pub chip: usize,
    /// Failure instant (ms). Applied only if the chip is online then.
    pub at_ms: f64,
    /// Repair time: the chip rejoins at `at_ms + down_for_ms`.
    pub down_for_ms: f64,
}

impl ChipOutage {
    /// Constructor shorthand.
    pub fn new(chip: usize, at_ms: f64, down_for_ms: f64) -> Self {
        assert!(at_ms >= 0.0 && down_for_ms > 0.0, "bad outage window");
        Self {
            chip,
            at_ms,
            down_for_ms,
        }
    }
}

/// How failures are generated.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Memoryless failures: every online chip fails after an
    /// exponential MTBF draw and repairs after an exponential MTTR
    /// draw. Draws come from one seeded stream consumed in
    /// deterministic event order.
    Random {
        /// Mean time between failures per chip (ms).
        mtbf_ms: f64,
        /// Mean time to repair (ms).
        mttr_ms: f64,
    },
    /// A fixed outage schedule — the controlled-experiment mode used by
    /// `repro faults` to pin "exactly one chip fails at t".
    Scripted {
        /// The outages, applied in list order.
        outages: Vec<ChipOutage>,
    },
}

/// Deployment knobs for fault injection.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Failure process.
    pub kind: FaultKind,
    /// Seed of the dedicated fault/jitter PRNG stream (kept separate
    /// from the arrival stream so enabling faults never perturbs the
    /// traffic a run sees).
    pub seed: u64,
}

impl FaultConfig {
    /// Memoryless MTBF/MTTR faults.
    pub fn random(mtbf_ms: f64, mttr_ms: f64, seed: u64) -> Self {
        assert!(mtbf_ms > 0.0 && mttr_ms > 0.0, "non-positive MTBF/MTTR");
        Self {
            kind: FaultKind::Random { mtbf_ms, mttr_ms },
            seed,
        }
    }

    /// A scripted outage plan.
    pub fn scripted(outages: Vec<ChipOutage>) -> Self {
        Self {
            kind: FaultKind::Scripted { outages },
            seed: 0,
        }
    }
}

/// Runtime state of the failure process: the config plus its PRNG.
#[derive(Clone, Debug)]
pub struct FaultModel {
    cfg: FaultConfig,
    rng: SplitMix64,
}

impl FaultModel {
    /// Instantiates the process from its config.
    pub fn new(cfg: FaultConfig) -> Self {
        let rng = SplitMix64::new(cfg.seed ^ 0xfau64.rotate_left(56));
        Self { cfg, rng }
    }

    /// Scripted outage list (empty for [`FaultKind::Random`]).
    pub fn outages(&self) -> &[ChipOutage] {
        match &self.cfg.kind {
            FaultKind::Random { .. } => &[],
            FaultKind::Scripted { outages } => outages,
        }
    }

    /// Delay until the next failure of a chip that just came online,
    /// or `None` when failures are scripted (armed up front instead).
    pub fn next_failure_ms(&mut self) -> Option<f64> {
        match self.cfg.kind {
            FaultKind::Random { mtbf_ms, .. } => Some(self.rng.next_exp(mtbf_ms)),
            FaultKind::Scripted { .. } => None,
        }
    }

    /// Repair delay for a chip that just failed randomly.
    pub fn next_repair_ms(&mut self) -> f64 {
        match self.cfg.kind {
            FaultKind::Random { mttr_ms, .. } => self.rng.next_exp(mttr_ms),
            FaultKind::Scripted { .. } => {
                unreachable!("scripted outages carry their own duration")
            }
        }
    }
}

/// Retry semantics for lost or deadline-expired requests.
///
/// A request's first service attempt is attempt 0; each re-entry
/// increments [`crate::request::Request::attempts`]. A request whose
/// attempts have reached `max_retries` when it next needs rescue is
/// dropped as *lost*. Backoff for the `k`-th retry is
/// `min(base · 2^(k-1), max)` scaled down by up to `jitter` uniformly —
/// deterministic, because the jitter draw comes from the fault stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Re-entries allowed per request (0 disables retry entirely).
    pub max_retries: u32,
    /// First-retry backoff (ms).
    pub base_backoff_ms: f64,
    /// Backoff ceiling (ms).
    pub max_backoff_ms: f64,
    /// Jitter fraction in `[0, 1)`: each backoff is scaled by a
    /// uniform draw from `[1 - jitter, 1]`, decorrelating retry storms.
    pub jitter: f64,
}

impl RetryPolicy {
    /// `max_retries` re-entries, 10 ms base doubling to a 500 ms cap,
    /// 50% jitter.
    pub fn new(max_retries: u32) -> Self {
        Self {
            max_retries,
            base_backoff_ms: 10.0,
            max_backoff_ms: 500.0,
            jitter: 0.5,
        }
    }

    /// Sets the base backoff (builder style).
    pub fn with_base_backoff_ms(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0);
        self.base_backoff_ms = ms;
        self
    }

    /// Sets the backoff ceiling (builder style).
    pub fn with_max_backoff_ms(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0);
        self.max_backoff_ms = ms;
        self
    }

    /// Sets the jitter fraction (builder style).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter outside [0, 1)");
        self.jitter = jitter;
        self
    }

    /// Backoff before retry number `attempt` (1-based), jittered.
    pub fn backoff_ms(&self, attempt: u32, rng: &mut SplitMix64) -> f64 {
        assert!(attempt >= 1, "attempt numbering starts at 1");
        let doubled = self.base_backoff_ms * f64::from(2u32.pow((attempt - 1).min(20)));
        let capped = doubled.min(self.max_backoff_ms);
        capped * (1.0 - self.jitter * rng.next_f64())
    }
}

/// Graceful degradation: brown-out shedding under capacity loss.
///
/// The simulator enters brown-out whenever the online chip count drops
/// below `capacity_threshold` × the run's initial online pool (chips
/// lost to failures or not yet repaired/spun up). While browned out,
/// the queue is trimmed to `max_queue_per_chip` × online chips by
/// shedding the requests with the *latest* deadlines — the work most
/// able to absorb the loss — so the surviving capacity keeps serving
/// the urgent work inside its SLO instead of spreading the pain across
/// every request. Shedding is terminal: shed requests are not retried.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrownOutConfig {
    /// Brown-out trigger: online < `capacity_threshold` × initial
    /// online pool. Must lie in `(0, 1]`.
    pub capacity_threshold: f64,
    /// Queue depth allowed per surviving chip while browned out.
    pub max_queue_per_chip: usize,
}

impl BrownOutConfig {
    /// Brown out below `capacity_threshold` of nominal capacity,
    /// keeping at most `max_queue_per_chip` queued per survivor.
    pub fn new(capacity_threshold: f64, max_queue_per_chip: usize) -> Self {
        assert!(
            capacity_threshold > 0.0 && capacity_threshold <= 1.0,
            "threshold outside (0, 1]"
        );
        Self {
            capacity_threshold,
            max_queue_per_chip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_model_is_deterministic_per_seed() {
        let mut a = FaultModel::new(FaultConfig::random(1_000.0, 50.0, 9));
        let mut b = FaultModel::new(FaultConfig::random(1_000.0, 50.0, 9));
        let xs: Vec<f64> = (0..16)
            .map(|i| {
                if i % 2 == 0 {
                    a.next_failure_ms().unwrap()
                } else {
                    a.next_repair_ms()
                }
            })
            .collect();
        let ys: Vec<f64> = (0..16)
            .map(|i| {
                if i % 2 == 0 {
                    b.next_failure_ms().unwrap()
                } else {
                    b.next_repair_ms()
                }
            })
            .collect();
        assert_eq!(xs, ys);
        let mut c = FaultModel::new(FaultConfig::random(1_000.0, 50.0, 10));
        assert_ne!(xs[0], c.next_failure_ms().unwrap());
    }

    #[test]
    fn mtbf_draws_converge_to_mean() {
        let mut m = FaultModel::new(FaultConfig::random(800.0, 40.0, 3));
        let n = 20_000;
        let mean = (0..n).map(|_| m.next_failure_ms().unwrap()).sum::<f64>() / f64::from(n);
        assert!((mean - 800.0).abs() < 25.0, "mean {mean}");
    }

    #[test]
    fn scripted_model_never_draws() {
        let mut m = FaultModel::new(FaultConfig::scripted(vec![ChipOutage::new(0, 100.0, 50.0)]));
        assert_eq!(m.next_failure_ms(), None);
        assert_eq!(m.outages().len(), 1);
        assert_eq!(m.outages()[0].chip, 0);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_band() {
        let p = RetryPolicy::new(5)
            .with_base_backoff_ms(8.0)
            .with_max_backoff_ms(100.0)
            .with_jitter(0.25);
        let mut rng = SplitMix64::new(7);
        for attempt in 1..=8u32 {
            let nominal = (8.0 * f64::from(2u32.pow(attempt - 1))).min(100.0);
            let b = p.backoff_ms(attempt, &mut rng);
            assert!(b <= nominal + 1e-12, "attempt {attempt}: {b} > {nominal}");
            assert!(b >= 0.75 * nominal - 1e-12, "attempt {attempt}: {b}");
        }
        // Jitter-free policy is exact.
        let q = RetryPolicy::new(2)
            .with_jitter(0.0)
            .with_base_backoff_ms(4.0);
        assert_eq!(q.backoff_ms(1, &mut rng), 4.0);
        assert_eq!(q.backoff_ms(2, &mut rng), 8.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn brown_out_rejects_zero_threshold() {
        BrownOutConfig::new(0.0, 4);
    }
}
