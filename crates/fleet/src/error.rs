//! Typed failure modes of the fleet engine.
//!
//! Everything that used to be a `panic!`/`expect` inside the simulator
//! — bad configuration, a non-finite timestamp entering the event heap,
//! an internal invariant breaking mid-run, a NaN latency reaching the
//! summary — surfaces here as an [`SimError`] value instead. A service
//! embedding the engine (the DSE, a what-if endpoint, the live
//! `zkphire-serve` front-end) can refuse one bad scenario or request
//! without dying.

use crate::metrics::MetricsError;

/// Typed failure modes of [`crate::sim::simulate`] and of the event
/// engine it drives.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The [`crate::sim::FleetConfig`] is unusable (zero chips, negative
    /// overhead, a scripted outage naming a chip outside the pool, …).
    InvalidConfig(String),
    /// A non-finite (NaN or infinite) timestamp reached event
    /// construction. A single NaN arrival would otherwise poison the
    /// event heap's ordering mid-run; it is rejected at the boundary
    /// instead.
    InvalidTime {
        /// The offending timestamp (ms); NaN or ±∞.
        time_ms: f64,
    },
    /// An event was scheduled before the engine's current clock — the
    /// future-event list only moves forward.
    EventInPast {
        /// The requested timestamp (ms).
        time_ms: f64,
        /// The engine clock when the push was attempted (ms).
        now_ms: f64,
    },
    /// An `Arrival` event popped with no primed request body — the
    /// arrival pipeline invariant (exactly one in flight) broke.
    ArrivalWithoutPending {
        /// The orphaned arrival's id.
        id: u64,
        /// Event time (ms).
        time_ms: f64,
    },
    /// A `ScaleTick` popped in a run with no autoscaler configured.
    TickWithoutAutoscaler {
        /// Event time (ms).
        time_ms: f64,
    },
    /// A `Retry` event popped for a request not parked in backoff.
    UnknownRetry {
        /// The unknown request id.
        id: u64,
        /// Event time (ms).
        time_ms: f64,
    },
    /// An engine invariant broke (event-stream corruption, accounting
    /// drift at drain, a policy returning an impossible answer). The
    /// message is the old `expect` text, kept verbatim so failures stay
    /// greppable across the migration.
    Invariant(String),
    /// Summarization rejected the run's latency sample (NaN record).
    Metrics(MetricsError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid fleet config: {why}"),
            Self::InvalidTime { time_ms } => {
                write!(f, "non-finite simulation time {time_ms}")
            }
            Self::EventInPast { time_ms, now_ms } => {
                write!(f, "event scheduled in the past: {time_ms} < {now_ms}")
            }
            Self::ArrivalWithoutPending { id, time_ms } => {
                write!(f, "arrival {id} at {time_ms} ms without pending request")
            }
            Self::TickWithoutAutoscaler { time_ms } => {
                write!(f, "scale tick at {time_ms} ms without autoscaler")
            }
            Self::UnknownRetry { id, time_ms } => {
                write!(f, "retry event at {time_ms} ms for unknown request {id}")
            }
            Self::Invariant(why) => write!(f, "engine invariant broke: {why}"),
            Self::Metrics(e) => write!(f, "metrics error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MetricsError> for SimError {
    fn from(e: MetricsError) -> Self {
        Self::Metrics(e)
    }
}
