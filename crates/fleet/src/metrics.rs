//! SLO metrics: exact sorted-sample quantiles, the per-run summary,
//! per-tenant latency breakdowns, and the Jain fairness index.

use std::collections::BTreeMap;

use crate::request::{RequestRecord, TenantId};
use zkphire_telemetry::Outcome;

/// Typed rejection of a bad metrics query. NaN is caught when the
/// sample is handed in — not deep inside a sort comparator — so callers
/// feeding untrusted latency data get an error naming the offending
/// index instead of a panic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricsError {
    /// The sample at this index is NaN.
    NanSample {
        /// Index of the first NaN in the input.
        index: usize,
    },
    /// An empty sample has no quantiles.
    EmptySample,
    /// `q` outside `(0, 1]`.
    InvalidQuantile(f64),
    /// A completion record carries a NaN latency — its finish or
    /// arrival timestamp was NaN, so no quantile of the run is
    /// meaningful.
    NanLatency {
        /// Id of the offending request record.
        id: u64,
    },
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::NanSample { index } => {
                write!(f, "NaN sample at index {index}")
            }
            MetricsError::EmptySample => write!(f, "quantile of empty sample"),
            MetricsError::InvalidQuantile(q) => {
                write!(f, "quantile {q} outside (0, 1]")
            }
            MetricsError::NanLatency { id } => {
                write!(f, "NaN latency on request record {id}")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// Exact nearest-rank quantile of an ascending-sorted sample:
/// the smallest element with cumulative frequency ≥ `q`.
///
/// # Panics
///
/// Panics on an empty sample or `q` outside `(0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "unsorted sample");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// NaN-rejecting quantile: validates the sample and `q` up front and
/// returns a typed [`MetricsError`] instead of panicking mid-sort.
pub fn try_quantile(values: &[f64], q: f64) -> Result<f64, MetricsError> {
    if let Some(index) = values.iter().position(|v| v.is_nan()) {
        return Err(MetricsError::NanSample { index });
    }
    if values.is_empty() {
        return Err(MetricsError::EmptySample);
    }
    if !(q > 0.0 && q <= 1.0) {
        return Err(MetricsError::InvalidQuantile(q));
    }
    let mut sorted = values.to_vec();
    // NaN already rejected, so total_cmp agrees with the numeric order.
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted(&sorted, q))
}

/// Convenience: sorts a copy and takes [`quantile_sorted`].
///
/// # Panics
///
/// Panics with the typed [`MetricsError`] message on NaN input, an
/// empty sample, or `q` outside `(0, 1]` — use [`try_quantile`] to
/// handle those as values.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    try_quantile(values, q).unwrap_or_else(|e| panic!("{e}"))
}

/// Per-tenant slice of a run: how one customer experienced the fleet.
#[derive(Clone, Debug)]
pub struct TenantSummary {
    /// The tenant.
    pub tenant: TenantId,
    /// Service weight used for the fairness index (1 if unspecified).
    pub weight: f64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Requests shed by brown-out degradation.
    pub shed: u64,
    /// Requests lost after exhausting their retry budget.
    pub lost: u64,
    /// Mean sojourn latency (ms).
    pub mean_latency_ms: f64,
    /// Median latency (ms).
    pub p50_latency_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_latency_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_latency_ms: f64,
    /// Fraction of this tenant's completions past their deadline.
    pub deadline_miss_rate: f64,
    /// SLO-violation rate over everything this tenant offered: late
    /// completions plus rejections, sheds and losses, divided by
    /// `completed + rejected + shed + lost` — the per-tenant answer to
    /// "what fraction of my traffic did the service fail".
    pub slo_violation_rate: f64,
}

impl TenantSummary {
    /// Everything this tenant offered that reached a terminal outcome.
    pub fn offered(&self) -> u64 {
        self.completed + self.rejected + self.shed + self.lost
    }
}

/// Jain's fairness index over per-tenant weight-normalized allocations
/// `x_i = completed_i / weight_i`:
/// `J = (Σ x_i)² / (n · Σ x_i²)` — 1 when service shares match weights
/// exactly, `1/n` when one tenant monopolizes the fleet. Empty or
/// single-tenant inputs return 1 (nothing to be unfair about).
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.len() <= 1 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocations.len() as f64 * sum_sq)
}

/// Aggregate results of one fleet simulation.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Requests that arrived from the traffic source. Conservation:
    /// `arrivals == completed + rejected + shed + lost` once the run
    /// drains (the property suite replays this from the trace).
    pub arrivals: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Requests shed by brown-out degradation (terminal, not retried).
    pub shed: u64,
    /// Requests lost for good: a chip failure or deadline expiry with
    /// no retry budget left.
    pub lost: u64,
    /// Retry re-entries scheduled (one request may retry many times).
    pub retries: u64,
    /// Chip failures injected mid-run.
    pub chip_failures: u64,
    /// Chip repairs completed mid-run.
    pub chip_repairs: u64,
    /// Timestamp of the last event (ms).
    pub makespan_ms: f64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// *Useful* completions per second: only requests that finished
    /// within their deadline count. Under failures this is the metric
    /// that separates "the fleet stayed up" from "the fleet stayed
    /// useful" — throughput counts late work, goodput does not.
    pub goodput_rps: f64,
    /// Mean sojourn latency (ms).
    pub mean_latency_ms: f64,
    /// Median latency (ms).
    pub p50_latency_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_latency_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_latency_ms: f64,
    /// Worst-case latency (ms).
    pub max_latency_ms: f64,
    /// Total busy time over total *provisioned* chip-time. For a fixed
    /// pool this equals the mean of the per-chip busy fractions; under
    /// autoscaling it charges only the chip-time actually kept online,
    /// so it diverges from `per_chip_utilization` (whose entries stay
    /// relative to the whole makespan, including slots never powered).
    pub mean_utilization: f64,
    /// Busy fraction per chip.
    pub per_chip_utilization: Vec<f64>,
    /// Time-weighted mean queue depth.
    pub mean_queue_depth: f64,
    /// Peak queue depth.
    pub max_queue_depth: usize,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Fraction of completed requests that missed their deadline.
    pub deadline_miss_rate: f64,
    /// Provisioned chip-time (chips online or spinning up, integrated
    /// over the run) in seconds — the cost side of autoscaling.
    pub chip_seconds: f64,
    /// Time-weighted mean provisioned chip count.
    pub mean_chips: f64,
    /// Peak chips simultaneously provisioned.
    pub peak_chips: usize,
    /// Chips the autoscaler brought online mid-run.
    pub scale_ups: u64,
    /// Chips the autoscaler retired mid-run.
    pub scale_downs: u64,
    /// One slice per tenant seen in the run, ascending by id.
    pub per_tenant: Vec<TenantSummary>,
    /// Jain fairness index over weight-normalized per-tenant
    /// completions (1.0 for single-tenant runs).
    pub jain_fairness: f64,
}

impl FleetSummary {
    /// The count behind each terminal [`Outcome`] — the reconciliation
    /// surface a [`zkphire_telemetry::WallTimeline`] checks itself
    /// against (see `zkphire-serve`'s `reconcile_wall`).
    pub fn outcome_count(&self, outcome: Outcome) -> u64 {
        match outcome {
            Outcome::Completed => self.completed,
            Outcome::Rejected => self.rejected,
            Outcome::Shed => self.shed,
            Outcome::Lost => self.lost,
        }
    }
}

/// Raw accumulators the simulator hands to [`summarize`].
#[derive(Clone, Debug)]
pub struct RunAccumulators {
    /// Per-chip busy milliseconds.
    pub busy_ms: Vec<f64>,
    /// Integral of queue depth over time (depth × ms).
    pub depth_time_integral: f64,
    /// Peak queue depth.
    pub max_queue_depth: usize,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests arrived from the source.
    pub arrivals: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Per-tenant admission rejections.
    pub rejected_by_tenant: BTreeMap<TenantId, u64>,
    /// Requests shed by brown-out degradation.
    pub shed: u64,
    /// Per-tenant brown-out sheds.
    pub shed_by_tenant: BTreeMap<TenantId, u64>,
    /// Requests lost past their retry budget.
    pub lost: u64,
    /// Per-tenant losses.
    pub lost_by_tenant: BTreeMap<TenantId, u64>,
    /// Retry re-entries scheduled.
    pub retries: u64,
    /// Chip failures injected.
    pub chip_failures: u64,
    /// Chip repairs completed.
    pub chip_repairs: u64,
    /// Timestamp of the last event (ms).
    pub makespan_ms: f64,
    /// Integral of provisioned chips over time (chips × ms). Covers
    /// online, retiring and spinning-up chips — everything drawing
    /// power.
    pub chip_time_integral_ms: f64,
    /// Peak provisioned chip count.
    pub peak_chips: usize,
    /// Mid-run scale-up count.
    pub scale_ups: u64,
    /// Mid-run scale-down count.
    pub scale_downs: u64,
}

/// Sorted latencies → `(mean, p50, p95, p99)`; zeros for an empty run.
fn latency_stats(sorted: &[f64]) -> (f64, f64, f64, f64) {
    if sorted.is_empty() {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        (
            sorted.iter().sum::<f64>() / sorted.len() as f64,
            quantile_sorted(sorted, 0.50),
            quantile_sorted(sorted, 0.95),
            quantile_sorted(sorted, 0.99),
        )
    }
}

/// Reduces completion records and accumulators to a [`FleetSummary`].
/// `tenant_weights` feeds the fairness index and the per-tenant
/// summaries; tenants absent from it weigh 1.
///
/// # Panics
///
/// Panics with the typed [`MetricsError`] message when a record carries
/// a NaN latency — use [`try_summarize`] to handle that as a value (the
/// fleet engine does).
pub fn summarize(
    records: &[RequestRecord],
    acc: &RunAccumulators,
    tenant_weights: &[(TenantId, f64)],
) -> FleetSummary {
    try_summarize(records, acc, tenant_weights).unwrap_or_else(|e| panic!("{e}"))
}

/// NaN-rejecting [`summarize`]: validates every record's latency up
/// front and returns a typed [`MetricsError::NanLatency`] naming the
/// offending request instead of panicking inside a sort comparator.
pub fn try_summarize(
    records: &[RequestRecord],
    acc: &RunAccumulators,
    tenant_weights: &[(TenantId, f64)],
) -> Result<FleetSummary, MetricsError> {
    if let Some(bad) = records.iter().find(|r| r.latency_ms().is_nan()) {
        return Err(MetricsError::NanLatency { id: bad.id });
    }
    let completed = records.len() as u64;
    let makespan = acc.makespan_ms;
    let mut latencies: Vec<f64> = records.iter().map(RequestRecord::latency_ms).collect();
    // NaN rejected above, so total_cmp agrees with the numeric order.
    latencies.sort_by(f64::total_cmp);
    let (mean, p50, p95, p99) = latency_stats(&latencies);
    let max = latencies.last().copied().unwrap_or(0.0);

    // Per-tenant slices: every tenant that completed a request or was
    // rejected gets one, ascending by id.
    let weight_of = |tenant: TenantId| {
        tenant_weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(1.0, |(_, w)| *w)
    };
    let mut by_tenant: BTreeMap<TenantId, Vec<&RequestRecord>> = BTreeMap::new();
    for r in records {
        by_tenant.entry(r.tenant).or_default().push(r);
    }
    for &tenant in acc
        .rejected_by_tenant
        .keys()
        .chain(acc.shed_by_tenant.keys())
        .chain(acc.lost_by_tenant.keys())
    {
        by_tenant.entry(tenant).or_default();
    }
    let per_tenant: Vec<TenantSummary> = by_tenant
        .iter()
        .map(|(&tenant, recs)| {
            let mut lats: Vec<f64> = recs.iter().map(|r| r.latency_ms()).collect();
            lats.sort_by(f64::total_cmp);
            let (t_mean, t_p50, t_p95, t_p99) = latency_stats(&lats);
            let misses = recs.iter().filter(|r| !r.met_deadline()).count() as u64;
            let rejected = acc.rejected_by_tenant.get(&tenant).copied().unwrap_or(0);
            let shed = acc.shed_by_tenant.get(&tenant).copied().unwrap_or(0);
            let lost = acc.lost_by_tenant.get(&tenant).copied().unwrap_or(0);
            let offered = recs.len() as u64 + rejected + shed + lost;
            TenantSummary {
                tenant,
                weight: weight_of(tenant),
                completed: recs.len() as u64,
                rejected,
                shed,
                lost,
                mean_latency_ms: t_mean,
                p50_latency_ms: t_p50,
                p95_latency_ms: t_p95,
                p99_latency_ms: t_p99,
                deadline_miss_rate: if recs.is_empty() {
                    0.0
                } else {
                    misses as f64 / recs.len() as f64
                },
                slo_violation_rate: if offered == 0 {
                    0.0
                } else {
                    (misses + rejected + shed + lost) as f64 / offered as f64
                },
            }
        })
        .collect();
    let allocations: Vec<f64> = per_tenant
        .iter()
        .map(|t| t.completed as f64 / t.weight)
        .collect();
    let jain_fairness = jain_index(&allocations);
    let per_chip_utilization: Vec<f64> = acc
        .busy_ms
        .iter()
        .map(|b| if makespan > 0.0 { b / makespan } else { 0.0 })
        .collect();
    // Busy time over *provisioned* time: for a static pool this equals
    // the mean of per-chip busy fractions; with autoscaling it charges
    // only the chip-time actually kept online.
    let mean_utilization = if acc.chip_time_integral_ms > 0.0 {
        acc.busy_ms.iter().sum::<f64>() / acc.chip_time_integral_ms
    } else {
        0.0
    };
    let misses = records.iter().filter(|r| !r.met_deadline()).count();
    let in_deadline = completed - misses as u64;
    Ok(FleetSummary {
        arrivals: acc.arrivals,
        completed,
        rejected: acc.rejected,
        shed: acc.shed,
        lost: acc.lost,
        retries: acc.retries,
        chip_failures: acc.chip_failures,
        chip_repairs: acc.chip_repairs,
        makespan_ms: makespan,
        throughput_rps: if makespan > 0.0 {
            completed as f64 / (makespan / 1000.0)
        } else {
            0.0
        },
        goodput_rps: if makespan > 0.0 {
            in_deadline as f64 / (makespan / 1000.0)
        } else {
            0.0
        },
        mean_latency_ms: mean,
        p50_latency_ms: p50,
        p95_latency_ms: p95,
        p99_latency_ms: p99,
        max_latency_ms: max,
        mean_utilization,
        per_chip_utilization,
        mean_queue_depth: if makespan > 0.0 {
            acc.depth_time_integral / makespan
        } else {
            0.0
        },
        max_queue_depth: acc.max_queue_depth,
        mean_batch_size: if acc.batches > 0 {
            completed as f64 / acc.batches as f64
        } else {
            0.0
        },
        deadline_miss_rate: if completed > 0 {
            misses as f64 / completed as f64
        } else {
            0.0
        },
        chip_seconds: acc.chip_time_integral_ms / 1000.0,
        mean_chips: if makespan > 0.0 {
            acc.chip_time_integral_ms / makespan
        } else {
            0.0
        },
        peak_chips: acc.peak_chips,
        scale_ups: acc.scale_ups,
        scale_downs: acc.scale_downs,
        per_tenant,
        jain_fairness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_quantiles() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile_sorted(&s, 0.50), 50.0);
        assert_eq!(quantile_sorted(&s, 0.95), 95.0);
        assert_eq!(quantile_sorted(&s, 0.99), 99.0);
        assert_eq!(quantile_sorted(&s, 1.0), 100.0);
        assert_eq!(quantile_sorted(&s, 0.001), 1.0);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile_sorted(&[7.5], 0.5), 7.5);
        assert_eq!(quantile_sorted(&[7.5], 1.0), 7.5);
    }

    #[test]
    fn unsorted_helper_matches_sorted() {
        let v = vec![9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(quantile(&v, 0.5), 5.0);
        assert_eq!(quantile(&v, 1.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_quantile_rejected() {
        quantile_sorted(&[1.0], 0.0);
    }

    #[test]
    fn nan_sample_rejected_with_typed_error() {
        // A NaN latency must surface as a typed error naming the index,
        // not a panic from inside the sort comparator.
        assert_eq!(
            try_quantile(&[1.0, f64::NAN, 3.0], 0.5),
            Err(MetricsError::NanSample { index: 1 })
        );
        assert_eq!(try_quantile(&[], 0.5), Err(MetricsError::EmptySample));
        assert_eq!(
            try_quantile(&[1.0], 0.0),
            Err(MetricsError::InvalidQuantile(0.0))
        );
        assert_eq!(
            try_quantile(&[1.0], 1.5),
            Err(MetricsError::InvalidQuantile(1.5))
        );
        // Valid input matches the sorted fast path.
        assert_eq!(try_quantile(&[3.0, 1.0, 2.0], 0.5), Ok(2.0));
    }

    #[test]
    #[should_panic(expected = "NaN sample at index 0")]
    fn quantile_panics_with_typed_message_on_nan() {
        quantile(&[f64::NAN], 0.5);
    }

    #[test]
    fn nan_latency_record_rejected_with_typed_error() {
        use zkphire_core::protocol::Gate;
        let rec = |id: u64, finish_ms: f64| RequestRecord {
            id,
            tenant: 3,
            class: crate::request::RequestClass::new(Gate::Jellyfish, 10),
            arrival_ms: 0.0,
            deadline_ms: 100.0,
            start_ms: 1.0,
            finish_ms,
            chip: 0,
            batch_size: 1,
            attempts: 0,
        };
        let acc = RunAccumulators {
            busy_ms: vec![0.0],
            depth_time_integral: 0.0,
            max_queue_depth: 0,
            batches: 1,
            arrivals: 2,
            rejected: 0,
            rejected_by_tenant: BTreeMap::new(),
            shed: 0,
            shed_by_tenant: BTreeMap::new(),
            lost: 0,
            lost_by_tenant: BTreeMap::new(),
            retries: 0,
            chip_failures: 0,
            chip_repairs: 0,
            makespan_ms: 10.0,
            chip_time_integral_ms: 10.0,
            peak_chips: 1,
            scale_ups: 0,
            scale_downs: 0,
        };
        // A NaN finish time must surface as a typed error naming the
        // record, not a panic from inside a sort comparator.
        let err = try_summarize(&[rec(0, 5.0), rec(7, f64::NAN)], &acc, &[]).unwrap_err();
        assert_eq!(err, MetricsError::NanLatency { id: 7 });
        // Clean records summarize fine through the same path.
        let ok = try_summarize(&[rec(0, 5.0)], &acc, &[]).expect("clean records");
        assert_eq!(ok.completed, 1);
        assert_eq!(ok.p99_latency_ms, 5.0);
    }

    #[test]
    #[should_panic(expected = "NaN latency on request record 9")]
    fn summarize_panics_with_typed_message_on_nan() {
        use zkphire_core::protocol::Gate;
        let rec = RequestRecord {
            id: 9,
            tenant: 0,
            class: crate::request::RequestClass::new(Gate::Vanilla, 8),
            arrival_ms: f64::NAN,
            deadline_ms: 1.0,
            start_ms: 0.0,
            finish_ms: 1.0,
            chip: 0,
            batch_size: 1,
            attempts: 0,
        };
        let acc = RunAccumulators {
            busy_ms: vec![0.0],
            depth_time_integral: 0.0,
            max_queue_depth: 0,
            batches: 0,
            arrivals: 1,
            rejected: 0,
            rejected_by_tenant: BTreeMap::new(),
            shed: 0,
            shed_by_tenant: BTreeMap::new(),
            lost: 0,
            lost_by_tenant: BTreeMap::new(),
            retries: 0,
            chip_failures: 0,
            chip_repairs: 0,
            makespan_ms: 1.0,
            chip_time_integral_ms: 1.0,
            peak_chips: 1,
            scale_ups: 0,
            scale_downs: 0,
        };
        summarize(&[rec], &acc, &[]);
    }

    #[test]
    fn jain_index_limits() {
        // Perfect equality → 1; total monopoly of n tenants → 1/n.
        assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
        let mono = jain_index(&[12.0, 0.0, 0.0, 0.0]);
        assert!((mono - 0.25).abs() < 1e-12, "monopoly {mono}");
        // Empty / single-tenant runs are trivially fair.
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[7.0]), 1.0);
        // All-zero allocations (nothing completed) are not NaN.
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
