//! SLO metrics: exact sorted-sample quantiles and the per-run summary.

use crate::request::RequestRecord;

/// Exact nearest-rank quantile of an ascending-sorted sample:
/// the smallest element with cumulative frequency ≥ `q`.
///
/// # Panics
///
/// Panics on an empty sample or `q` outside `(0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "unsorted sample");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Convenience: sorts a copy and takes [`quantile_sorted`].
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency"));
    quantile_sorted(&sorted, q)
}

/// Aggregate results of one fleet simulation.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Requests served to completion.
    pub completed: u64,
    /// Requests refused at admission (queue full).
    pub rejected: u64,
    /// Timestamp of the last event (ms).
    pub makespan_ms: f64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// Mean sojourn latency (ms).
    pub mean_latency_ms: f64,
    /// Median latency (ms).
    pub p50_latency_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_latency_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_latency_ms: f64,
    /// Worst-case latency (ms).
    pub max_latency_ms: f64,
    /// Mean of per-chip busy fractions.
    pub mean_utilization: f64,
    /// Busy fraction per chip.
    pub per_chip_utilization: Vec<f64>,
    /// Time-weighted mean queue depth.
    pub mean_queue_depth: f64,
    /// Peak queue depth.
    pub max_queue_depth: usize,
    /// Mean requests per dispatched batch.
    pub mean_batch_size: f64,
    /// Fraction of completed requests that missed their deadline.
    pub deadline_miss_rate: f64,
}

/// Raw accumulators the simulator hands to [`summarize`].
#[derive(Clone, Debug)]
pub struct RunAccumulators {
    /// Per-chip busy milliseconds.
    pub busy_ms: Vec<f64>,
    /// Integral of queue depth over time (depth × ms).
    pub depth_time_integral: f64,
    /// Peak queue depth.
    pub max_queue_depth: usize,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Timestamp of the last event (ms).
    pub makespan_ms: f64,
}

/// Reduces completion records and accumulators to a [`FleetSummary`].
pub fn summarize(records: &[RequestRecord], acc: &RunAccumulators) -> FleetSummary {
    let completed = records.len() as u64;
    let makespan = acc.makespan_ms;
    let mut latencies: Vec<f64> = records.iter().map(RequestRecord::latency_ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency"));
    let (mean, p50, p95, p99, max) = if latencies.is_empty() {
        (0.0, 0.0, 0.0, 0.0, 0.0)
    } else {
        (
            latencies.iter().sum::<f64>() / latencies.len() as f64,
            quantile_sorted(&latencies, 0.50),
            quantile_sorted(&latencies, 0.95),
            quantile_sorted(&latencies, 0.99),
            *latencies.last().expect("non-empty"),
        )
    };
    let per_chip_utilization: Vec<f64> = acc
        .busy_ms
        .iter()
        .map(|b| if makespan > 0.0 { b / makespan } else { 0.0 })
        .collect();
    let mean_utilization = if per_chip_utilization.is_empty() {
        0.0
    } else {
        per_chip_utilization.iter().sum::<f64>() / per_chip_utilization.len() as f64
    };
    let misses = records.iter().filter(|r| !r.met_deadline()).count();
    FleetSummary {
        completed,
        rejected: acc.rejected,
        makespan_ms: makespan,
        throughput_rps: if makespan > 0.0 {
            completed as f64 / (makespan / 1000.0)
        } else {
            0.0
        },
        mean_latency_ms: mean,
        p50_latency_ms: p50,
        p95_latency_ms: p95,
        p99_latency_ms: p99,
        max_latency_ms: max,
        mean_utilization,
        per_chip_utilization,
        mean_queue_depth: if makespan > 0.0 {
            acc.depth_time_integral / makespan
        } else {
            0.0
        },
        max_queue_depth: acc.max_queue_depth,
        mean_batch_size: if acc.batches > 0 {
            completed as f64 / acc.batches as f64
        } else {
            0.0
        },
        deadline_miss_rate: if completed > 0 {
            misses as f64 / completed as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_quantiles() {
        let s: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile_sorted(&s, 0.50), 50.0);
        assert_eq!(quantile_sorted(&s, 0.95), 95.0);
        assert_eq!(quantile_sorted(&s, 0.99), 99.0);
        assert_eq!(quantile_sorted(&s, 1.0), 100.0);
        assert_eq!(quantile_sorted(&s, 0.001), 1.0);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile_sorted(&[7.5], 0.5), 7.5);
        assert_eq!(quantile_sorted(&[7.5], 1.0), 7.5);
    }

    #[test]
    fn unsorted_helper_matches_sorted() {
        let v = vec![9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(quantile(&v, 0.5), 5.0);
        assert_eq!(quantile(&v, 1.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_quantile_rejected() {
        quantile_sorted(&[1.0], 0.0);
    }
}
