//! Reactive autoscaling: vary the online chip count mid-run to track
//! bursty demand.
//!
//! The paper sizes one chip for peak gate degree; a proving *service*
//! sized for peak burns idle silicon through every trough. This module
//! lets the simulator grow and shrink the pool between
//! `[min_chips, max_chips]`: a periodic `ScaleTick` event observes the
//! queue and pool, an [`AutoscalePolicy`] turns the observation into a
//! [`ScaleDecision`], and the simulator realizes it through `ChipUp`
//! events (after a configurable spin-up latency — power gating, PCIe
//! re-enumeration, SRAM init) and `ChipDown` events (idle chips only,
//! immediately). Decisions are pure functions of observed state, so
//! autoscaled runs stay bit-identical per seed.
//!
//! Three policies ship:
//!
//! * [`StaticScale`] — never changes the pool; the baseline every
//!   reactive policy is judged against.
//! * [`QueueDepthScale`] — hysteresis on backlog: add chips while the
//!   queue exceeds `up_depth` entries per online chip, retire one while
//!   it sits at or below `down_depth` and a chip is idle.
//! * [`UtilizationTargetScale`] — hold the busy fraction inside
//!   `[low, high]`: add a chip when the pool runs hotter than `high`
//!   with work queued, retire one when it runs colder than `low`.

use crate::request::TenantId;

/// Deployment knobs shared by every autoscaling policy.
#[derive(Clone, Debug)]
pub struct AutoscaleConfig {
    /// Which reactive policy decides.
    pub kind: ScaleKind,
    /// Pool floor (≥ 1): the autoscaler never goes below this.
    pub min_chips: usize,
    /// Pool ceiling: the autoscaler never goes above this.
    pub max_chips: usize,
    /// Latency from an up-decision to the chip accepting work (ms).
    pub spin_up_ms: f64,
    /// Minimum quiet time between scaling actions (ms).
    pub cooldown_ms: f64,
    /// Decision cadence (ms between `ScaleTick` events).
    pub interval_ms: f64,
}

impl AutoscaleConfig {
    /// A reactive pool between `min_chips` and `max_chips` with a
    /// 250 ms spin-up, 500 ms cooldown, and 100 ms decision cadence.
    pub fn new(kind: ScaleKind, min_chips: usize, max_chips: usize) -> Self {
        assert!(min_chips >= 1, "autoscale floor below one chip");
        assert!(max_chips >= min_chips, "max_chips < min_chips");
        Self {
            kind,
            min_chips,
            max_chips,
            spin_up_ms: 250.0,
            cooldown_ms: 500.0,
            interval_ms: 100.0,
        }
    }

    /// Sets the spin-up latency (builder style).
    pub fn with_spin_up_ms(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0);
        self.spin_up_ms = ms;
        self
    }

    /// Sets the cooldown (builder style).
    pub fn with_cooldown_ms(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0);
        self.cooldown_ms = ms;
        self
    }

    /// Sets the decision cadence (builder style).
    pub fn with_interval_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0);
        self.interval_ms = ms;
        self
    }
}

/// Which autoscaling policy a simulation runs (the analogue of
/// [`crate::policy::PolicyKind`] for pool sizing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScaleKind {
    /// Fixed pool; the decision is always [`ScaleDecision::Hold`].
    Static,
    /// Queue-depth hysteresis (see [`QueueDepthScale`]).
    QueueDepth {
        /// Scale up while queued requests per online chip exceed this.
        up_depth: usize,
        /// Scale down while total queued requests sit at or below this.
        down_depth: usize,
    },
    /// Utilization band (see [`UtilizationTargetScale`]).
    UtilizationTarget {
        /// Retire a chip below this busy fraction.
        low: f64,
        /// Add a chip above this busy fraction (with work queued).
        high: f64,
    },
}

impl ScaleKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn AutoscalePolicy> {
        match self {
            ScaleKind::Static => Box::new(StaticScale),
            ScaleKind::QueueDepth {
                up_depth,
                down_depth,
            } => Box::new(QueueDepthScale::new(up_depth, down_depth)),
            ScaleKind::UtilizationTarget { low, high } => {
                Box::new(UtilizationTargetScale::new(low, high))
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScaleKind::Static => "static",
            ScaleKind::QueueDepth { .. } => "queue-depth",
            ScaleKind::UtilizationTarget { .. } => "util-target",
        }
    }
}

/// What a policy sees at a `ScaleTick`: the pool and queue state the
/// simulator exposes. All fields are deterministic functions of the
/// run, never wall-clock.
#[derive(Clone, Copy, Debug)]
pub struct ScaleObservation {
    /// Simulation time of the tick (ms).
    pub now_ms: f64,
    /// Requests queued (not yet dispatched).
    pub queue_depth: usize,
    /// Chips currently accepting work.
    pub online_chips: usize,
    /// Chips currently serving a batch.
    pub busy_chips: usize,
    /// Chips spinning up (decided but not yet online).
    pub pending_up: usize,
    /// Chips currently failed and under repair (fault injection). A
    /// reactive policy sees capacity loss directly: the queue-depth
    /// policy's backlog-per-chip rises as `online_chips` shrinks, so
    /// failures organically recruit spare slots when the pool has
    /// headroom.
    pub failed_chips: usize,
    /// Pool floor from the config.
    pub min_chips: usize,
    /// Pool ceiling from the config.
    pub max_chips: usize,
}

impl ScaleObservation {
    /// Busy fraction of the online pool (0 when nothing is online).
    pub fn utilization(&self) -> f64 {
        if self.online_chips == 0 {
            0.0
        } else {
            self.busy_chips as f64 / self.online_chips as f64
        }
    }

    /// Online plus already-committed spin-ups: what the pool will be
    /// once in-flight decisions land.
    pub fn committed_chips(&self) -> usize {
        self.online_chips + self.pending_up
    }
}

/// What a policy wants done. The simulator clamps the request to the
/// `[min_chips, max_chips]` bounds and to the chips actually available
/// (only idle chips retire), so a policy cannot violate the pool
/// invariants however it answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Leave the pool alone.
    Hold,
    /// Spin up this many additional chips.
    Up(usize),
    /// Retire this many idle chips.
    Down(usize),
}

/// A pool-sizing policy: observation in, decision out.
pub trait AutoscalePolicy {
    /// Decides at one `ScaleTick`.
    fn decide(&mut self, obs: &ScaleObservation) -> ScaleDecision;

    /// Display name.
    fn name(&self) -> &'static str;
}

/// See [`ScaleKind::Static`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticScale;

impl AutoscalePolicy for StaticScale {
    fn decide(&mut self, _obs: &ScaleObservation) -> ScaleDecision {
        ScaleDecision::Hold
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// See [`ScaleKind::QueueDepth`]: backlog-driven with hysteresis. The
/// up and down thresholds are deliberately separated so the pool does
/// not flap when the depth hovers near one boundary.
#[derive(Clone, Copy, Debug)]
pub struct QueueDepthScale {
    up_depth: usize,
    down_depth: usize,
}

impl QueueDepthScale {
    /// `up_depth` is per online chip; `down_depth` is absolute and must
    /// sit below the up trigger at one chip to leave a dead band.
    pub fn new(up_depth: usize, down_depth: usize) -> Self {
        assert!(up_depth >= 1, "up_depth must be >= 1");
        assert!(down_depth < up_depth, "hysteresis band is empty");
        Self {
            up_depth,
            down_depth,
        }
    }
}

impl AutoscalePolicy for QueueDepthScale {
    fn decide(&mut self, obs: &ScaleObservation) -> ScaleDecision {
        let committed = obs.committed_chips().max(1);
        let backlog_per_chip = obs.queue_depth / committed;
        if backlog_per_chip >= self.up_depth {
            // One chip per up_depth of excess backlog: deep bursts
            // recruit several chips in a single decision.
            return ScaleDecision::Up((backlog_per_chip / self.up_depth).max(1));
        }
        if obs.queue_depth <= self.down_depth
            && obs.pending_up == 0
            && obs.busy_chips < obs.online_chips
        {
            return ScaleDecision::Down(1);
        }
        ScaleDecision::Hold
    }

    fn name(&self) -> &'static str {
        "queue-depth"
    }
}

/// See [`ScaleKind::UtilizationTarget`]: hold the pool's busy fraction
/// inside `[low, high]`.
#[derive(Clone, Copy, Debug)]
pub struct UtilizationTargetScale {
    low: f64,
    high: f64,
}

impl UtilizationTargetScale {
    /// Band bounds in `(0, 1]`, `low < high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            0.0 < low && low < high && high <= 1.0,
            "bad band [{low}, {high}]"
        );
        Self { low, high }
    }
}

impl AutoscalePolicy for UtilizationTargetScale {
    fn decide(&mut self, obs: &ScaleObservation) -> ScaleDecision {
        let util = obs.utilization();
        if util >= self.high && obs.queue_depth > 0 && obs.pending_up == 0 {
            // Recruit enough chips to bring the queue down within a few
            // intervals: one chip per queued batch-equivalent, capped by
            // the simulator at max_chips.
            let want = (obs.queue_depth / 4).max(1);
            return ScaleDecision::Up(want);
        }
        if util <= self.low
            && obs.queue_depth == 0
            && obs.pending_up == 0
            && obs.busy_chips < obs.online_chips
        {
            return ScaleDecision::Down(1);
        }
        ScaleDecision::Hold
    }

    fn name(&self) -> &'static str {
        "util-target"
    }
}

/// Per-tenant service weights for fair queueing: `(tenant, weight)`
/// pairs; tenants absent from the list weigh 1.
pub type TenantWeights = Vec<(TenantId, f64)>;

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(depth: usize, online: usize, busy: usize, pending: usize) -> ScaleObservation {
        ScaleObservation {
            now_ms: 1000.0,
            queue_depth: depth,
            online_chips: online,
            busy_chips: busy,
            pending_up: pending,
            failed_chips: 0,
            min_chips: 1,
            max_chips: 8,
        }
    }

    #[test]
    fn static_always_holds() {
        let mut p = StaticScale;
        assert_eq!(p.decide(&obs(500, 2, 2, 0)), ScaleDecision::Hold);
        assert_eq!(p.decide(&obs(0, 2, 0, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn queue_depth_hysteresis() {
        let mut p = QueueDepthScale::new(8, 1);
        // Deep backlog: scale up, more for deeper queues.
        assert_eq!(p.decide(&obs(16, 2, 2, 0)), ScaleDecision::Up(1));
        assert_eq!(p.decide(&obs(64, 2, 2, 0)), ScaleDecision::Up(4));
        // Inside the dead band: hold.
        assert_eq!(p.decide(&obs(6, 2, 2, 0)), ScaleDecision::Hold);
        // Empty queue with an idle chip: shrink by one.
        assert_eq!(p.decide(&obs(0, 2, 1, 0)), ScaleDecision::Down(1));
        // Empty queue but all chips busy: hold (they are still needed).
        assert_eq!(p.decide(&obs(0, 2, 2, 0)), ScaleDecision::Hold);
        // Pending spin-ups suppress both re-up (counted in committed)
        // and down decisions.
        assert_eq!(p.decide(&obs(0, 2, 1, 1)), ScaleDecision::Hold);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn queue_depth_rejects_empty_band() {
        QueueDepthScale::new(4, 4);
    }

    #[test]
    fn utilization_band() {
        let mut p = UtilizationTargetScale::new(0.3, 0.9);
        // Saturated with backlog: up.
        assert_eq!(p.decide(&obs(10, 2, 2, 0)), ScaleDecision::Up(2));
        // Saturated, nothing queued: the pool is exactly right.
        assert_eq!(p.decide(&obs(0, 2, 2, 0)), ScaleDecision::Hold);
        // Cold with an idle chip: down.
        assert_eq!(p.decide(&obs(0, 4, 1, 0)), ScaleDecision::Down(1));
        // In-band: hold.
        assert_eq!(p.decide(&obs(0, 4, 2, 0)), ScaleDecision::Hold);
    }

    #[test]
    fn kind_builds_matching_policy() {
        for (kind, name) in [
            (ScaleKind::Static, "static"),
            (
                ScaleKind::QueueDepth {
                    up_depth: 4,
                    down_depth: 0,
                },
                "queue-depth",
            ),
            (
                ScaleKind::UtilizationTarget {
                    low: 0.2,
                    high: 0.8,
                },
                "util-target",
            ),
        ] {
            assert_eq!(kind.build().name(), name);
            assert_eq!(kind.name(), name);
        }
    }
}
