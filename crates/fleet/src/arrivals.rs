//! Request generators: the open-loop traffic a proving service faces.
//!
//! All sources are deterministic functions of their seed and produce
//! arrivals in nondecreasing time order up to a horizon; the simulator
//! pulls them one ahead so at most one arrival event is in flight.

use crate::mix::TenantMix;
use crate::request::{RequestClass, TenantId};
use crate::rng::SplitMix64;

/// An open-loop traffic source.
pub trait ArrivalSource {
    /// The next arrival as `(absolute time ms, class, tenant)`, or
    /// `None` when the source is exhausted. Times must be
    /// nondecreasing.
    fn next_arrival(&mut self) -> Option<(f64, RequestClass, TenantId)>;
}

/// Poisson arrivals: i.i.d. exponential inter-arrival gaps at a fixed
/// rate, classes drawn from a [`WorkloadMix`].
#[derive(Clone, Debug)]
pub struct PoissonSource {
    mean_gap_ms: f64,
    horizon_ms: f64,
    t: f64,
    rng: SplitMix64,
    mix: TenantMix,
}

impl PoissonSource {
    /// `rate_rps` requests/second on average until `horizon_ms`. The
    /// mix may be a bare [`crate::mix::WorkloadMix`] (single tenant) or
    /// a full [`TenantMix`].
    pub fn new(rate_rps: f64, horizon_ms: f64, mix: impl Into<TenantMix>, seed: u64) -> Self {
        assert!(rate_rps > 0.0, "non-positive arrival rate");
        Self {
            mean_gap_ms: 1000.0 / rate_rps,
            horizon_ms,
            t: 0.0,
            rng: SplitMix64::new(seed),
            mix: mix.into(),
        }
    }
}

impl ArrivalSource for PoissonSource {
    fn next_arrival(&mut self) -> Option<(f64, RequestClass, TenantId)> {
        let t = self.t + self.rng.next_exp(self.mean_gap_ms);
        if t > self.horizon_ms {
            return None;
        }
        self.t = t;
        let (tenant, class) = self.mix.draw(&mut self.rng);
        Some((t, class, tenant))
    }
}

/// Bursty ON/OFF (interrupted-Poisson) arrivals: exponentially
/// distributed ON phases emitting Poisson traffic at `on_rate_rps`,
/// separated by silent exponentially distributed OFF phases. The
/// long-run average rate is `on_rate_rps * on / (on + off)`.
#[derive(Clone, Debug)]
pub struct OnOffSource {
    mean_gap_ms: f64,
    mean_on_ms: f64,
    mean_off_ms: f64,
    horizon_ms: f64,
    t: f64,
    on_end_ms: f64,
    rng: SplitMix64,
    mix: TenantMix,
}

impl OnOffSource {
    /// Starts at the beginning of an ON phase at time zero.
    pub fn new(
        on_rate_rps: f64,
        mean_on_ms: f64,
        mean_off_ms: f64,
        horizon_ms: f64,
        mix: impl Into<TenantMix>,
        seed: u64,
    ) -> Self {
        assert!(on_rate_rps > 0.0 && mean_on_ms > 0.0 && mean_off_ms > 0.0);
        let mix = mix.into();
        let mut rng = SplitMix64::new(seed);
        let on_end_ms = rng.next_exp(mean_on_ms);
        Self {
            mean_gap_ms: 1000.0 / on_rate_rps,
            mean_on_ms,
            mean_off_ms,
            horizon_ms,
            t: 0.0,
            on_end_ms,
            rng,
            mix,
        }
    }
}

impl ArrivalSource for OnOffSource {
    fn next_arrival(&mut self) -> Option<(f64, RequestClass, TenantId)> {
        loop {
            let candidate = self.t + self.rng.next_exp(self.mean_gap_ms);
            if candidate > self.horizon_ms {
                return None;
            }
            if candidate <= self.on_end_ms {
                self.t = candidate;
                let (tenant, class) = self.mix.draw(&mut self.rng);
                return Some((candidate, class, tenant));
            }
            // The candidate fell past the ON phase: skip the OFF phase
            // and restart the gap draw inside the next ON phase.
            let off = self.rng.next_exp(self.mean_off_ms);
            let next_on_start = self.on_end_ms + off;
            if next_on_start > self.horizon_ms {
                return None;
            }
            self.t = next_on_start;
            self.on_end_ms = next_on_start + self.rng.next_exp(self.mean_on_ms);
        }
    }
}

/// Replays a recorded arrival trace (times must be nondecreasing).
#[derive(Clone, Debug)]
pub struct TraceSource {
    entries: Vec<(f64, RequestClass, TenantId)>,
    idx: usize,
}

impl TraceSource {
    /// Builds from `(time_ms, class)` pairs, all tenant 0; panics if
    /// out of order.
    pub fn new(entries: Vec<(f64, RequestClass)>) -> Self {
        Self::with_tenants(entries.into_iter().map(|(t, c)| (t, c, 0)).collect())
    }

    /// Builds from `(time_ms, class, tenant)` triples; panics if out of
    /// order.
    pub fn with_tenants(entries: Vec<(f64, RequestClass, TenantId)>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace arrivals out of order"
        );
        Self { entries, idx: 0 }
    }
}

impl ArrivalSource for TraceSource {
    fn next_arrival(&mut self) -> Option<(f64, RequestClass, TenantId)> {
        let e = self.entries.get(self.idx).copied();
        if e.is_some() {
            self.idx += 1;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_core::protocol::Gate;

    use crate::mix::{TenantProfile, WorkloadMix};

    fn mix() -> WorkloadMix {
        WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18))
    }

    #[test]
    fn poisson_rate_close_to_nominal() {
        let mut src = PoissonSource::new(200.0, 60_000.0, mix(), 42);
        let mut count = 0u64;
        let mut last = 0.0;
        while let Some((t, _, _)) = src.next_arrival() {
            assert!(t >= last && t <= 60_000.0);
            last = t;
            count += 1;
        }
        // 200 rps for 60 s ≈ 12000 arrivals; allow 5%.
        assert!((11_400..=12_600).contains(&count), "count {count}");
    }

    #[test]
    fn onoff_is_burstier_than_poisson() {
        // Same average rate: ON 1/3 of the time at 300 rps ≈ 100 rps.
        let horizon = 120_000.0;
        let mut on_off = OnOffSource::new(300.0, 500.0, 1000.0, horizon, mix(), 7);
        let mut poisson = PoissonSource::new(100.0, horizon, mix(), 7);
        let cv2 = |src: &mut dyn ArrivalSource| {
            let mut gaps = Vec::new();
            let mut last = 0.0;
            while let Some((t, _, _)) = src.next_arrival() {
                gaps.push(t - last);
                last = t;
            }
            let n = gaps.len() as f64;
            let mean = gaps.iter().sum::<f64>() / n;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
            var / (mean * mean)
        };
        let bursty = cv2(&mut on_off);
        let smooth = cv2(&mut poisson);
        // Poisson gaps have squared CV ≈ 1; the MMPP must exceed it.
        assert!(smooth < 1.3, "poisson cv2 {smooth}");
        assert!(bursty > smooth * 1.5, "onoff {bursty} vs poisson {smooth}");
    }

    #[test]
    fn trace_replays_exactly() {
        let class = RequestClass::new(Gate::Vanilla, 20);
        let entries = vec![(1.0, class, 3u32), (1.0, class, 0), (4.5, class, 7)];
        let mut src = TraceSource::with_tenants(entries.clone());
        let mut out = Vec::new();
        while let Some(e) = src.next_arrival() {
            out.push(e);
        }
        assert_eq!(out, entries);
    }

    #[test]
    fn multi_tenant_poisson_labels_every_arrival() {
        let tm = crate::mix::TenantMix::new(vec![
            TenantProfile::new(1, 1.0, mix()),
            TenantProfile::new(2, 2.0, mix()),
        ]);
        let mut src = PoissonSource::new(100.0, 20_000.0, tm, 6);
        let mut seen = std::collections::BTreeSet::new();
        while let Some((_, _, tenant)) = src.next_arrival() {
            seen.insert(tenant);
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn trace_rejects_disorder() {
        let class = RequestClass::new(Gate::Vanilla, 20);
        TraceSource::new(vec![(2.0, class), (1.0, class)]);
    }
}
