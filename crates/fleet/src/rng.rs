//! The simulator's own deterministic PRNG.
//!
//! The DES must be bit-reproducible from its seed alone: no wall-clock,
//! no global RNG, no seed-from-time. [`SplitMix64`] is a tiny,
//! well-mixed 64-bit generator (Steele et al., "Fast Splittable
//! Pseudorandom Number Generators") whose whole state is one `u64`, so
//! generator state can be embedded per arrival source and cloned to
//! replay a run exactly.

/// SplitMix64: one-word deterministic PRNG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero. Debiased by
    /// rejection so the stream stays portable across `n`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    /// Used for Poisson inter-arrival gaps and ON/OFF phase lengths.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "next_exp: non-positive mean");
        // 1 - u avoids ln(0); u in [0,1) so the argument is in (0,1].
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Weighted index draw: returns `i` with probability
    /// `weights[i] / sum(weights)`.
    pub fn next_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "next_weighted: zero total weight");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn exp_mean_converges() {
        let mut rng = SplitMix64::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(4.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn below_bounds_and_weighted_support() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.next_weighted(&[1.0, 2.0, 1.0])] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        assert!(counts[1] > counts[0] && counts[1] > counts[2]);
    }
}
