//! Design-space exploration (paper §VI-A1 objective, §VI-B1 Pareto
//! methodology, Table III knobs).
//!
//! Two explorations mirror the paper's:
//!
//! * [`sumcheck_dse`] — standalone programmable-SumCheck designs under an
//!   area cap, selected by the λ-objective
//!   `min (1-λ)·geomean(slowdown) + λ·(1-mean(utilization))` over a
//!   polynomial training set (Fig. 6/7);
//! * [`full_system_dse`] — the Table III cross-product over full zkPHIRE
//!   designs, yielding per-bandwidth and global Pareto frontiers over
//!   (runtime, area) for a `2^µ`-gate workload (Fig. 10 / Table IV).

pub mod objective;
pub mod pareto;
pub mod space;

pub use objective::{select_design, sumcheck_dse, DesignScore, SumcheckDseResult};
pub use pareto::{global_pareto, pareto_front, ParetoPoint};
pub use space::{full_system_dse, DseSpace, FullSystemPoint};
