//! Design-space exploration (paper §VI-A1 objective, §VI-B1 Pareto
//! methodology, Table III knobs).
//!
//! Two explorations mirror the paper's:
//!
//! * [`sumcheck_dse`] — standalone programmable-SumCheck designs under an
//!   area cap, selected by the λ-objective
//!   `min (1-λ)·geomean(slowdown) + λ·(1-mean(utilization))` over a
//!   polynomial training set (Fig. 6/7);
//! * [`full_system_dse`] — the Table III cross-product over full zkPHIRE
//!   designs, yielding per-bandwidth and global Pareto frontiers over
//!   (runtime, area) for a `2^µ`-gate workload (Fig. 10 / Table IV).
//!
//! A third exploration goes beyond the paper, to deployment altitude:
//!
//! * [`fleet_objective`] — sizes a *fleet* of chips against a p99
//!   latency SLO and traffic level via the `zkphire-fleet`
//!   discrete-event simulator, reporting the area/power cost roll-up,
//!   and compares static peak sizing against reactive autoscaling
//!   policies on bursty ON/OFF traffic
//!   ([`fleet_objective::compare_provisioning`]): the cost of
//!   over-provisioning in chip-seconds and kJ versus the SLO risk of
//!   scaling up through a spin-up latency.

pub mod fleet_objective;
pub mod objective;
pub mod pareto;
pub mod space;

pub use fleet_objective::{
    compare_provisioning, evaluate_burst_fleet_with, evaluate_fleet,
    evaluate_fleet_under_outage_with, evaluate_fleet_with, fleet_cost, size_fleet,
    size_fleet_burst, size_fleet_n_minus_k, BurstScenario, FleetCost, FleetSizing, FleetSlo,
    ProvisioningComparison, ProvisioningRow,
};
pub use objective::{select_design, sumcheck_dse, DesignScore, SumcheckDseResult};
pub use pareto::{global_pareto, pareto_front, ParetoPoint};
pub use space::{full_system_dse, DseSpace, FullSystemPoint};
