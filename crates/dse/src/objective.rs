//! The λ-objective design selection of §VI-A1:
//!
//! ```text
//! min over designs  (1-λ)·f_slowdown(sd_i) + λ·(1 - f_util(u_i))
//! ```
//!
//! with geometric-mean slowdown (relative to the fastest design in the
//! area-constrained space for each polynomial) and arithmetic-mean
//! utilization, evaluated over a polynomial training set.

use zkphire_core::memory::MemoryConfig;
use zkphire_core::profile::PolyProfile;
use zkphire_core::sumcheck_unit::{simulate_sumcheck, SumcheckUnitConfig};
use zkphire_core::tech::PrimeMode;

/// Score card for one candidate design.
#[derive(Clone, Debug)]
pub struct DesignScore {
    /// The candidate.
    pub config: SumcheckUnitConfig,
    /// Standalone area (mm²).
    pub area_mm2: f64,
    /// Runtime (ms) per training polynomial.
    pub runtimes_ms: Vec<f64>,
    /// Utilization per training polynomial.
    pub utilizations: Vec<f64>,
    /// Geomean slowdown vs the per-polynomial best in the space.
    pub geomean_slowdown: f64,
    /// Arithmetic-mean utilization.
    pub mean_utilization: f64,
    /// The λ-objective value.
    pub objective: f64,
}

/// Result of one standalone-SumCheck DSE at a bandwidth tier.
#[derive(Clone, Debug)]
pub struct SumcheckDseResult {
    /// The selected design.
    pub best: DesignScore,
    /// Number of candidates inside the area cap.
    pub candidates: usize,
}

/// Enumerates the standalone SumCheck design space (Table III's SumCheck
/// rows, PE counts extended to fill the area budget).
pub fn candidate_configs() -> Vec<SumcheckUnitConfig> {
    let mut out = Vec::new();
    for &pes in &[1usize, 2, 4, 8, 16, 24, 32] {
        for ees in 2..=7usize {
            for pls in 3..=8usize {
                for &bank_words in &[1usize << 10, 1 << 12, 1 << 14] {
                    // Standalone §III unit: dense streaming (no §IV-B1
                    // offset buffers).
                    out.push(SumcheckUnitConfig {
                        pes,
                        ees,
                        pls,
                        bank_words,
                        sparse_io: false,
                    });
                }
            }
        }
    }
    out
}

/// Runs the λ-objective selection over `training` at one bandwidth.
///
/// Returns `None` when no candidate fits the area cap.
pub fn select_design(
    training: &[PolyProfile],
    mu: usize,
    bandwidth_gbps: f64,
    area_cap_mm2: f64,
    lambda: f64,
    prime: PrimeMode,
) -> Option<SumcheckDseResult> {
    let mem = MemoryConfig::new(bandwidth_gbps);
    let candidates: Vec<SumcheckUnitConfig> = candidate_configs()
        .into_iter()
        .filter(|c| c.standalone_area_mm2(prime) <= area_cap_mm2)
        .collect();
    if candidates.is_empty() {
        return None;
    }

    // Evaluate every candidate on every polynomial.
    let mut runtimes: Vec<Vec<f64>> = Vec::with_capacity(candidates.len());
    let mut utils: Vec<Vec<f64>> = Vec::with_capacity(candidates.len());
    for cfg in &candidates {
        let mut rs = Vec::with_capacity(training.len());
        let mut us = Vec::with_capacity(training.len());
        for p in training {
            let r = simulate_sumcheck(p, mu, cfg, &mem);
            rs.push(r.ms());
            us.push(r.utilization);
        }
        runtimes.push(rs);
        utils.push(us);
    }

    // Per-polynomial best runtime across the space.
    let best_per_poly: Vec<f64> = (0..training.len())
        .map(|i| {
            runtimes
                .iter()
                .map(|rs| rs[i])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut best: Option<DesignScore> = None;
    for ((cfg, rs), us) in candidates.iter().zip(&runtimes).zip(&utils) {
        let geomean_slowdown = geomean(
            &rs.iter()
                .zip(&best_per_poly)
                .map(|(r, b)| r / b)
                .collect::<Vec<f64>>(),
        );
        let mean_utilization = us.iter().sum::<f64>() / us.len() as f64;
        let objective = (1.0 - lambda) * geomean_slowdown + lambda * (1.0 - mean_utilization);
        let score = DesignScore {
            config: *cfg,
            area_mm2: cfg.standalone_area_mm2(prime),
            runtimes_ms: rs.clone(),
            utilizations: us.clone(),
            geomean_slowdown,
            mean_utilization,
            objective,
        };
        if best.as_ref().is_none_or(|b| score.objective < b.objective) {
            best = Some(score);
        }
    }
    Some(SumcheckDseResult {
        best: best.expect("non-empty candidates"),
        candidates: candidates.len(),
    })
}

/// Convenience wrapper used by the Fig. 6 harness: the paper's λ = 0.8
/// utilization-leaning selection.
pub fn sumcheck_dse(
    training: &[PolyProfile],
    mu: usize,
    bandwidth_gbps: f64,
    area_cap_mm2: f64,
) -> Option<SumcheckDseResult> {
    select_design(
        training,
        mu,
        bandwidth_gbps,
        area_cap_mm2,
        0.8,
        PrimeMode::Arbitrary,
    )
}

fn geomean(values: &[f64]) -> f64 {
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_poly::training_set;

    fn small_training() -> Vec<PolyProfile> {
        training_set()
            .iter()
            .take(4)
            .map(PolyProfile::from_gate)
            .collect()
    }

    #[test]
    fn selection_respects_area_cap() {
        let training = small_training();
        let result = sumcheck_dse(&training, 18, 1024.0, 37.0).unwrap();
        assert!(result.best.area_mm2 <= 37.0);
        assert!(result.candidates > 10);
    }

    #[test]
    fn tiny_cap_yields_no_design() {
        let training = small_training();
        assert!(sumcheck_dse(&training, 18, 1024.0, 0.1).is_none());
    }

    #[test]
    fn lambda_zero_prefers_speed() {
        // Pure-performance selection must be at least as fast (geomean)
        // as the utilization-leaning one.
        let training = small_training();
        let fast = select_design(&training, 18, 2048.0, 37.0, 0.0, PrimeMode::Arbitrary).unwrap();
        let util = select_design(&training, 18, 2048.0, 37.0, 0.8, PrimeMode::Arbitrary).unwrap();
        assert!(fast.best.geomean_slowdown <= util.best.geomean_slowdown + 1e-9);
        assert!(util.best.mean_utilization >= fast.best.mean_utilization - 1e-9);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }
}
