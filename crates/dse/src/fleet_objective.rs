//! Fleet sizing: extends the paper's single-chip design-space
//! methodology to the deployment question — *how many* chips of a
//! design meet a latency SLO under a given traffic level, and what does
//! the fleet cost?
//!
//! The objective mirrors §VI-A1's structure but at service altitude:
//! the constraint is an SLO (p99 sojourn latency and an optional
//! rejection bound) evaluated by the `zkphire-fleet` discrete-event
//! simulator, and the figure of merit is fleet cost — silicon area and
//! average power rolled up from the chip model ([`ZkphireConfig::area`] /
//! [`ZkphireConfig::power`]) times the chip count.

use zkphire_core::costdb::CostModel;
use zkphire_core::system::ZkphireConfig;
use zkphire_fleet::{
    simulate, AutoscaleConfig, BrownOutConfig, ChipOutage, FaultConfig, FleetConfig, FleetSummary,
    OnOffSource, PoissonSource, PolicyKind, RetryPolicy, ScaleKind, TenantMix, WorkloadMix,
};

/// The service-level objective a fleet must meet.
#[derive(Clone, Debug)]
pub struct FleetSlo {
    /// Offered load (requests per second, Poisson).
    pub arrival_rps: f64,
    /// p99 sojourn latency bound (ms).
    pub p99_ms: f64,
    /// Admission queue bound applied to the simulated fleet; `None`
    /// queues without limit (and then no rejection ever occurs, so
    /// `max_reject_fraction` only binds together with a capacity).
    pub queue_capacity: Option<usize>,
    /// Maximum admissible rejection fraction (0 disallows any).
    pub max_reject_fraction: f64,
    /// Simulated horizon (ms).
    pub horizon_ms: f64,
    /// Traffic seed.
    pub seed: u64,
}

impl FleetSlo {
    /// An SLO at `arrival_rps` with a `p99_ms` bound; 10 s horizon,
    /// unbounded queue, no rejections allowed, fixed seed.
    pub fn new(arrival_rps: f64, p99_ms: f64) -> Self {
        Self {
            arrival_rps,
            p99_ms,
            queue_capacity: None,
            max_reject_fraction: 0.0,
            horizon_ms: 10_000.0,
            seed: 0xf1ee7,
        }
    }

    /// Bounds the admission queue (builder style); rejections then
    /// count against `max_reject_fraction`.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }
}

/// Dollar-free cost model: what `chips` copies of the design spend.
#[derive(Clone, Copy, Debug)]
pub struct FleetCost {
    /// Chip count.
    pub chips: usize,
    /// Total silicon area (mm²).
    pub total_area_mm2: f64,
    /// Total average power (W).
    pub total_power_w: f64,
}

/// The outcome of sizing a fleet against an SLO.
#[derive(Clone, Debug)]
pub struct FleetSizing {
    /// Smallest chip count meeting the SLO.
    pub chips: usize,
    /// Fleet cost at that count.
    pub cost: FleetCost,
    /// The simulated metrics at that count.
    pub summary: FleetSummary,
}

/// Rolls up area/power for `chips` copies of `cfg`.
pub fn fleet_cost(cfg: &ZkphireConfig, chips: usize) -> FleetCost {
    let area = cfg.area().total();
    let power = cfg.power().total();
    FleetCost {
        chips,
        total_area_mm2: area * chips as f64,
        total_power_w: power * chips as f64,
    }
}

/// Simulates `chips` chips of `cfg` under the SLO's traffic and reports
/// the metrics (one point of the sizing sweep).
pub fn evaluate_fleet(
    cfg: &ZkphireConfig,
    chips: usize,
    mix: &WorkloadMix,
    policy: PolicyKind,
    slo: &FleetSlo,
) -> FleetSummary {
    let mut cost = CostModel::new(*cfg, true);
    evaluate_fleet_with(&mut cost, chips, mix, policy, slo)
}

/// [`evaluate_fleet`] reusing a caller-owned (memoized) cost model, so
/// sweeps over chip counts share one protocol-model cache.
pub fn evaluate_fleet_with(
    cost: &mut CostModel,
    chips: usize,
    mix: &WorkloadMix,
    policy: PolicyKind,
    slo: &FleetSlo,
) -> FleetSummary {
    let mut source = PoissonSource::new(slo.arrival_rps, slo.horizon_ms, mix.clone(), slo.seed);
    let mut fleet_cfg = FleetConfig::new(chips).with_policy(policy);
    if let Some(cap) = slo.queue_capacity {
        fleet_cfg = fleet_cfg.with_queue_capacity(cap);
    }
    simulate(&fleet_cfg, &mut source, cost)
        .expect("sizing sweep built an invalid fleet config")
        .summary
}

fn meets(summary: &FleetSummary, slo: &FleetSlo) -> bool {
    let offered = summary.completed + summary.rejected;
    let reject_fraction = if offered > 0 {
        summary.rejected as f64 / offered as f64
    } else {
        0.0
    };
    summary.p99_latency_ms <= slo.p99_ms && reject_fraction <= slo.max_reject_fraction
}

/// The shared sizing search: smallest chip count in `[1, max_chips]`
/// whose simulated summary satisfies `ok`, as `(chips, summary)`.
/// Doubling then bisection, assuming feasibility is monotone in chip
/// count (more chips never hurt under a work-conserving policy):
/// `O(log max_chips)` full DES runs total.
fn smallest_feasible(
    max_chips: usize,
    mut evaluate: impl FnMut(usize) -> FleetSummary,
    ok: impl Fn(&FleetSummary) -> bool,
) -> Option<(usize, FleetSummary)> {
    assert!(max_chips >= 1);
    // Doubling phase: find some feasible count (and the largest
    // infeasible one below it).
    let mut lo = 0usize; // largest count known infeasible
    let mut feasible: Option<(usize, FleetSummary)> = None;
    let mut n = 1usize;
    loop {
        let summary = evaluate(n);
        if ok(&summary) {
            feasible = Some((n, summary));
            break;
        }
        lo = n;
        if n >= max_chips {
            break;
        }
        n = (n * 2).min(max_chips);
    }
    let (mut hi, mut best_summary) = feasible?;
    // Bisection on (lo, hi]: shrink to the smallest feasible count.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let summary = evaluate(mid);
        if ok(&summary) {
            hi = mid;
            best_summary = summary;
        } else {
            lo = mid;
        }
    }
    Some((hi, best_summary))
}

/// Sizes a fleet of `cfg` chips against `slo`: the smallest chip count
/// in `[1, max_chips]` whose simulated p99 (and rejection fraction)
/// meets the SLO. Returns `None` when even `max_chips` misses it.
/// All probe runs share one memoized cost model.
pub fn size_fleet(
    cfg: &ZkphireConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    slo: &FleetSlo,
    max_chips: usize,
) -> Option<FleetSizing> {
    let mut cost = CostModel::new(*cfg, true);
    let (chips, summary) = smallest_feasible(
        max_chips,
        |n| evaluate_fleet_with(&mut cost, n, mix, policy, slo),
        |summary| meets(summary, slo),
    )?;
    Some(FleetSizing {
        chips,
        cost: fleet_cost(cfg, chips),
        summary,
    })
}

/// Simulates `chips` chips under the SLO's traffic with `k` of them
/// knocked out mid-run: a scripted outage takes chips `0..k` down at
/// 25% of the horizon and holds them down for half the horizon, long
/// enough that the degraded fleet must absorb steady-state load — not
/// just a blip — on `chips - k` survivors. Lost in-flight work re-enters
/// through `retry`, and latest-deadline work is shed once the pool drops
/// below the `brown_out` threshold (pass `None` to forbid shedding).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_fleet_under_outage_with(
    cost: &mut CostModel,
    chips: usize,
    k: usize,
    mix: &WorkloadMix,
    policy: PolicyKind,
    slo: &FleetSlo,
    retry: RetryPolicy,
    brown_out: Option<BrownOutConfig>,
) -> FleetSummary {
    assert!(
        k < chips,
        "outage of {k} chips leaves a {chips}-chip fleet empty"
    );
    let mut source = PoissonSource::new(slo.arrival_rps, slo.horizon_ms, mix.clone(), slo.seed);
    let outages = (0..k)
        .map(|i| ChipOutage::new(i, 0.25 * slo.horizon_ms, 0.5 * slo.horizon_ms))
        .collect();
    let mut fleet_cfg = FleetConfig::new(chips)
        .with_policy(policy)
        .with_faults(FaultConfig::scripted(outages))
        .with_retry(retry);
    if let Some(b) = brown_out {
        fleet_cfg = fleet_cfg.with_brown_out(b);
    }
    if let Some(cap) = slo.queue_capacity {
        fleet_cfg = fleet_cfg.with_queue_capacity(cap);
    }
    simulate(&fleet_cfg, &mut source, cost)
        .expect("outage sweep built an invalid fleet config")
        .summary
}

/// Whether a degraded run still honors the SLO: the p99 bound, with
/// rejections, losses *and* sheds all counted against the rejection
/// budget — under failures every non-served request is an SLO failure,
/// whatever mechanism dropped it.
fn meets_degraded(summary: &FleetSummary, slo: &FleetSlo) -> bool {
    let failed = summary.rejected + summary.lost + summary.shed;
    let fraction = if summary.arrivals > 0 {
        failed as f64 / summary.arrivals as f64
    } else {
        0.0
    };
    summary.p99_latency_ms <= slo.p99_ms && fraction <= slo.max_reject_fraction
}

/// Failure-aware sizing: the smallest chip count in `[k+1, max_chips]`
/// that still meets `slo` while any `k` chips are down for a sustained
/// outage (N-1 sizing at `k = 1`, N-2 at `k = 2`, …). The margin over
/// [`size_fleet`] is the redundancy the failure domain costs. Returns
/// `None` when even `max_chips` cannot absorb the outage.
#[allow(clippy::too_many_arguments)]
pub fn size_fleet_n_minus_k(
    cfg: &ZkphireConfig,
    mix: &WorkloadMix,
    policy: PolicyKind,
    slo: &FleetSlo,
    max_chips: usize,
    k: usize,
    retry: RetryPolicy,
    brown_out: Option<BrownOutConfig>,
) -> Option<FleetSizing> {
    assert!(k < max_chips, "k = {k} leaves no survivors at max_chips");
    let mut cost = CostModel::new(*cfg, true);
    let (chips, summary) = smallest_feasible(
        max_chips,
        |n| {
            if n <= k {
                // Too few survivors to even run; report an infeasible
                // sentinel so the search keeps growing the pool.
                let mut s = evaluate_fleet_with(&mut cost, n.max(1), mix, policy, slo);
                s.p99_latency_ms = f64::INFINITY;
                s
            } else {
                evaluate_fleet_under_outage_with(
                    &mut cost, n, k, mix, policy, slo, retry, brown_out,
                )
            }
        },
        |summary| meets_degraded(summary, slo),
    )?;
    Some(FleetSizing {
        chips,
        cost: fleet_cost(cfg, chips),
        summary,
    })
}

/// A bursty ON/OFF (interrupted-Poisson) traffic scenario — the
/// workload shape where static peak sizing wastes the most silicon.
#[derive(Clone, Debug)]
pub struct BurstScenario {
    /// Arrival rate inside ON phases (requests/second).
    pub on_rate_rps: f64,
    /// Mean ON-phase length (ms).
    pub mean_on_ms: f64,
    /// Mean OFF-phase length (ms).
    pub mean_off_ms: f64,
    /// Simulated horizon (ms).
    pub horizon_ms: f64,
    /// Traffic seed.
    pub seed: u64,
}

impl BurstScenario {
    /// Long-run average arrival rate (requests/second).
    pub fn mean_rate_rps(&self) -> f64 {
        self.on_rate_rps * self.mean_on_ms / (self.mean_on_ms + self.mean_off_ms)
    }

    /// Duty cycle: the fraction of time the source is ON.
    pub fn duty_cycle(&self) -> f64 {
        self.mean_on_ms / (self.mean_on_ms + self.mean_off_ms)
    }
}

/// Simulates a (possibly autoscaled) fleet under `scenario`, reusing a
/// caller-owned memoized cost model. `chips` is the fixed pool size, or
/// the initial size when `autoscale` is given.
pub fn evaluate_burst_fleet_with(
    cost: &mut CostModel,
    chips: usize,
    autoscale: Option<AutoscaleConfig>,
    mix: &TenantMix,
    policy: PolicyKind,
    scenario: &BurstScenario,
) -> FleetSummary {
    let mut source = OnOffSource::new(
        scenario.on_rate_rps,
        scenario.mean_on_ms,
        scenario.mean_off_ms,
        scenario.horizon_ms,
        mix.clone(),
        scenario.seed,
    );
    let mut fleet_cfg = FleetConfig::new(chips)
        .with_policy(policy)
        .with_tenant_weights(mix.service_weights());
    if let Some(a) = autoscale {
        fleet_cfg = fleet_cfg.with_autoscale(a);
    }
    simulate(&fleet_cfg, &mut source, cost)
        .expect("burst sweep built an invalid fleet config")
        .summary
}

/// Sizes a *static* fleet against a p99 bound under ON/OFF bursts: the
/// smallest fixed chip count in `[1, max_chips]` with simulated
/// p99 ≤ `p99_ms`. The peak-sized answer every reactive policy is
/// compared against.
pub fn size_fleet_burst(
    cfg: &ZkphireConfig,
    mix: &TenantMix,
    policy: PolicyKind,
    scenario: &BurstScenario,
    p99_ms: f64,
    max_chips: usize,
) -> Option<FleetSizing> {
    let mut cost = CostModel::new(*cfg, true);
    let (chips, summary) = smallest_feasible(
        max_chips,
        |n| evaluate_burst_fleet_with(&mut cost, n, None, mix, policy, scenario),
        |summary| summary.p99_latency_ms <= p99_ms,
    )?;
    Some(FleetSizing {
        chips,
        cost: fleet_cost(cfg, chips),
        summary,
    })
}

/// One provisioning strategy's outcome under a burst scenario.
#[derive(Clone, Debug)]
pub struct ProvisioningRow {
    /// Strategy name (`static`, `queue-depth`, `util-target`, …).
    pub label: String,
    /// Simulated metrics.
    pub summary: FleetSummary,
    /// Whether the p99 bound held.
    pub meets_slo: bool,
    /// Chip-time actually provisioned, in chip-seconds — the
    /// over-provisioning cost a reactive policy tries to shed.
    pub chip_seconds: f64,
    /// Energy spent keeping those chips powered (kJ): chip-seconds ×
    /// per-chip average power.
    pub energy_kj: f64,
}

/// Static-vs-reactive provisioning under ON/OFF bursts.
#[derive(Clone, Debug)]
pub struct ProvisioningComparison {
    /// The p99 bound every strategy is held to (ms).
    pub p99_slo_ms: f64,
    /// The static optimum's chip count (also the reactive ceiling).
    pub static_chips: usize,
    /// One row per strategy; `rows[0]` is the static baseline.
    pub rows: Vec<ProvisioningRow>,
}

/// Compares reactive autoscaling against the static `size_fleet_burst`
/// optimum on one burst scenario: the static fleet is sized for the
/// p99 bound, then each reactive policy runs with bounds
/// `[1, static_chips]` — same peak capacity, elastic average. A
/// reactive row "wins" when `meets_slo` holds at lower `chip_seconds`
/// than the static baseline. Returns `None` when even `max_chips`
/// static chips miss the bound.
#[allow(clippy::too_many_arguments)]
pub fn compare_provisioning(
    cfg: &ZkphireConfig,
    mix: &TenantMix,
    policy: PolicyKind,
    scenario: &BurstScenario,
    p99_slo_ms: f64,
    max_chips: usize,
    reactive: &[ScaleKind],
    spin_up_ms: f64,
) -> Option<ProvisioningComparison> {
    let sizing = size_fleet_burst(cfg, mix, policy, scenario, p99_slo_ms, max_chips)?;
    let power_w = cfg.power().total();
    let mut cost = CostModel::new(*cfg, true);
    let row = |label: &str, summary: FleetSummary| {
        let chip_seconds = summary.chip_seconds;
        ProvisioningRow {
            label: label.to_string(),
            meets_slo: summary.p99_latency_ms <= p99_slo_ms,
            chip_seconds,
            energy_kj: chip_seconds * power_w / 1000.0,
            summary,
        }
    };
    let mut rows = vec![row("static", sizing.summary.clone())];
    for &kind in reactive {
        let autoscale = AutoscaleConfig::new(kind, 1, sizing.chips)
            .with_spin_up_ms(spin_up_ms)
            .with_cooldown_ms(2.0 * spin_up_ms)
            .with_interval_ms(spin_up_ms.max(1.0) / 2.0);
        let summary =
            evaluate_burst_fleet_with(&mut cost, 1, Some(autoscale), mix, policy, scenario);
        rows.push(row(kind.name(), summary));
    }
    Some(ProvisioningComparison {
        p99_slo_ms,
        static_chips: sizing.chips,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkphire_core::protocol::Gate;
    use zkphire_fleet::RequestClass;

    fn mix() -> WorkloadMix {
        WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18))
    }

    #[test]
    fn sizing_meets_slo_and_is_minimal() {
        let cfg = ZkphireConfig::exemplar();
        let mut cost_db = CostModel::new(cfg, true);
        let per_proof = cost_db.proof_ms(Gate::Jellyfish, 18);
        // Load that needs more than one chip: 3× one chip's capacity.
        let rate = 3.0 * 1000.0 / per_proof;
        let slo = FleetSlo {
            arrival_rps: rate,
            p99_ms: 20.0 * per_proof,
            queue_capacity: None,
            max_reject_fraction: 0.0,
            horizon_ms: 4_000.0,
            seed: 21,
        };
        let sizing = size_fleet(&cfg, &mix(), PolicyKind::SizeClass, &slo, 32)
            .expect("feasible within 32 chips");
        assert!(sizing.chips >= 3, "chips {}", sizing.chips);
        assert!(sizing.summary.p99_latency_ms <= slo.p99_ms);
        // Minimality: one fewer chip must miss the SLO.
        if sizing.chips > 1 {
            let under = evaluate_fleet(&cfg, sizing.chips - 1, &mix(), PolicyKind::SizeClass, &slo);
            assert!(!super::meets(&under, &slo));
        }
    }

    #[test]
    fn infeasible_slo_returns_none() {
        let cfg = ZkphireConfig::exemplar();
        let slo = FleetSlo {
            arrival_rps: 50.0,
            p99_ms: 0.001, // nothing proves in a microsecond
            queue_capacity: None,
            max_reject_fraction: 0.0,
            horizon_ms: 1_000.0,
            seed: 2,
        };
        assert!(size_fleet(&cfg, &mix(), PolicyKind::Fifo, &slo, 4).is_none());
    }

    #[test]
    fn rejection_constraint_binds_with_bounded_queue() {
        let cfg = ZkphireConfig::exemplar();
        let mut cost_db = CostModel::new(cfg, true);
        let per_proof = cost_db.proof_ms(Gate::Jellyfish, 18);
        // Overload one chip 3×: with a tiny queue it must shed load.
        let rate = 3.0 * 1000.0 / per_proof;
        let slo = FleetSlo {
            arrival_rps: rate,
            p99_ms: f64::INFINITY, // latency never binds here
            queue_capacity: Some(4),
            max_reject_fraction: 0.01,
            horizon_ms: 4_000.0,
            seed: 9,
        };
        let one_chip = evaluate_fleet(&cfg, 1, &mix(), PolicyKind::SizeClass, &slo);
        assert!(one_chip.rejected > 0, "bounded queue must shed overload");
        // size_fleet must therefore need more than one chip even though
        // the latency bound is infinite.
        let sizing = size_fleet(&cfg, &mix(), PolicyKind::SizeClass, &slo, 32)
            .expect("feasible within 32 chips");
        assert!(sizing.chips > 1, "chips {}", sizing.chips);
    }

    #[test]
    fn n_minus_one_sizing_buys_redundancy() {
        let cfg = ZkphireConfig::exemplar();
        let mut cost_db = CostModel::new(cfg, true);
        let per_proof = cost_db.proof_ms(Gate::Jellyfish, 18);
        let rate = 3.0 * 1000.0 / per_proof;
        let slo = FleetSlo {
            arrival_rps: rate,
            p99_ms: 20.0 * per_proof,
            queue_capacity: None,
            max_reject_fraction: 0.0,
            horizon_ms: 4_000.0,
            seed: 21,
        };
        let plain = size_fleet(&cfg, &mix(), PolicyKind::SizeClass, &slo, 32)
            .expect("feasible within 32 chips");
        let n1 = size_fleet_n_minus_k(
            &cfg,
            &mix(),
            PolicyKind::SizeClass,
            &slo,
            32,
            1,
            RetryPolicy::new(5),
            None,
        )
        .expect("N-1 feasible within 32 chips");
        // Surviving an outage can never need fewer chips.
        assert!(
            n1.chips >= plain.chips,
            "N-1 {} vs plain {}",
            n1.chips,
            plain.chips
        );
        // The sizing run really degraded and recovered one chip.
        assert_eq!(n1.summary.chip_failures, 1);
        assert_eq!(n1.summary.chip_repairs, 1);
        assert!(n1.summary.p99_latency_ms <= slo.p99_ms);
        assert_eq!(n1.summary.rejected + n1.summary.lost + n1.summary.shed, 0);
    }

    #[test]
    fn burst_scenario_rates() {
        let s = BurstScenario {
            on_rate_rps: 900.0,
            mean_on_ms: 500.0,
            mean_off_ms: 1_000.0,
            horizon_ms: 10_000.0,
            seed: 1,
        };
        assert!((s.duty_cycle() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_rate_rps() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn reactive_beats_static_under_bursts() {
        // The acceptance scenario: short intense bursts, long troughs.
        // A static fleet sized for the p99 bound keeps every chip
        // powered through the troughs; a reactive policy with the same
        // ceiling must meet the same bound on fewer chip-seconds.
        let cfg = ZkphireConfig::exemplar();
        let mut cost_db = CostModel::new(cfg, true);
        let per = cost_db.proof_ms(Gate::Jellyfish, 18);
        let tm = TenantMix::single(mix());
        let scenario = BurstScenario {
            on_rate_rps: 6.0 * 1000.0 / per, // six chips' worth when ON
            mean_on_ms: 60.0 * per,
            mean_off_ms: 240.0 * per, // 20% duty cycle
            horizon_ms: 1_500.0 * per,
            seed: 5,
        };
        let slo = 30.0 * per;
        let cmp = compare_provisioning(
            &cfg,
            &tm,
            PolicyKind::SizeClass,
            &scenario,
            slo,
            16,
            &[
                ScaleKind::QueueDepth {
                    up_depth: 4,
                    down_depth: 0,
                },
                ScaleKind::UtilizationTarget {
                    low: 0.3,
                    high: 0.9,
                },
            ],
            2.0 * per,
        )
        .expect("static sizing feasible within 16 chips");
        assert!(cmp.static_chips >= 2, "chips {}", cmp.static_chips);
        let static_row = &cmp.rows[0];
        assert!(static_row.meets_slo);
        assert_eq!(cmp.rows.len(), 3);
        let outcomes: Vec<(String, bool, f64)> = cmp
            .rows
            .iter()
            .map(|r| (r.label.clone(), r.meets_slo, r.chip_seconds))
            .collect();
        let winner = cmp.rows[1..]
            .iter()
            .any(|r| r.meets_slo && r.chip_seconds < static_row.chip_seconds);
        assert!(winner, "no reactive win: {outcomes:?}");
        // Energy tracks chip-seconds through the chip's power model.
        for r in &cmp.rows {
            assert!((r.energy_kj - r.chip_seconds * cfg.power().total() / 1000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cost_scales_linearly_with_chips() {
        let cfg = ZkphireConfig::exemplar();
        let one = fleet_cost(&cfg, 1);
        let five = fleet_cost(&cfg, 5);
        assert!((five.total_area_mm2 - 5.0 * one.total_area_mm2).abs() < 1e-9);
        assert!((five.total_power_w - 5.0 * one.total_power_w).abs() < 1e-9);
        // Sanity anchor: one exemplar chip is ~294 mm² / ~202 W.
        assert!((one.total_area_mm2 - 294.0).abs() < 15.0);
        assert!((one.total_power_w - 202.0).abs() < 10.0);
    }
}
