//! The Table III full-system design space and the Fig. 10 Pareto sweep.
//!
//! The raw cross-product is ~4 million configurations; step runtimes are
//! memoized per knob subset (SumCheck step times depend only on the
//! SumCheck knobs and bandwidth, MSM times only on the MSM knobs, etc.),
//! so the sweep reduces to cheap compositions — the same decomposition
//! the paper's own DSE must rely on to be tractable.

use zkphire_core::forest::ForestConfig;
use zkphire_core::memory::MemoryConfig;
use zkphire_core::mle_combine::MleCombineConfig;
use zkphire_core::msm_unit::{simulate_msm, MsmUnitConfig, ScalarProfile};
use zkphire_core::permquot::{simulate_permquot, PermQuotConfig};
use zkphire_core::protocol::Gate;
use zkphire_core::sumcheck_unit::{simulate_sumcheck, SumcheckUnitConfig};
use zkphire_core::system::ZkphireConfig;
use zkphire_core::tech::{PrimeMode, MULS_PER_TREE};

use crate::pareto::{pareto_front, ParetoPoint};

/// The Table III design knobs.
#[derive(Clone, Debug)]
pub struct DseSpace {
    /// SumCheck PEs.
    pub sumcheck_pes: Vec<usize>,
    /// Extension Engines per PE.
    pub ees: Vec<usize>,
    /// Product Lanes per PE.
    pub pls: Vec<usize>,
    /// SumCheck SRAM bank words.
    pub bank_words: Vec<usize>,
    /// MSM PEs.
    pub msm_pes: Vec<usize>,
    /// MSM window sizes (bits).
    pub windows: Vec<usize>,
    /// MSM points per PE.
    pub points_per_pe: Vec<usize>,
    /// FracMLE (PermQuotGen) PEs.
    pub frac_pes: Vec<usize>,
    /// Bandwidth tiers (GB/s).
    pub bandwidths: Vec<f64>,
}

impl Default for DseSpace {
    /// The exact Table III ranges.
    fn default() -> Self {
        Self {
            sumcheck_pes: vec![1, 2, 4, 8, 16, 32],
            ees: vec![2, 3, 4, 5, 6, 7],
            pls: vec![3, 4, 5, 6, 7, 8],
            bank_words: vec![1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15],
            msm_pes: vec![1, 2, 4, 8, 16, 32],
            windows: vec![7, 8, 9, 10],
            points_per_pe: vec![1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14],
            frac_pes: vec![1, 2, 3, 4],
            bandwidths: MemoryConfig::sweep_tiers().to_vec(),
        }
    }
}

impl DseSpace {
    /// A thinned space for tests and quick examples.
    pub fn quick() -> Self {
        Self {
            sumcheck_pes: vec![4, 16],
            ees: vec![3, 7],
            pls: vec![5],
            bank_words: vec![1 << 12],
            msm_pes: vec![8, 32],
            windows: vec![8],
            points_per_pe: vec![1 << 13],
            frac_pes: vec![4],
            bandwidths: vec![512.0, 2048.0],
        }
    }

    /// Total configurations in the cross-product.
    pub fn size(&self) -> usize {
        self.sumcheck_pes.len()
            * self.ees.len()
            * self.pls.len()
            * self.bank_words.len()
            * self.msm_pes.len()
            * self.windows.len()
            * self.points_per_pe.len()
            * self.frac_pes.len()
            * self.bandwidths.len()
    }
}

/// A materialized design point on a Pareto frontier.
#[derive(Clone, Copy, Debug)]
pub struct FullSystemPoint {
    /// The full configuration.
    pub config: ZkphireConfig,
    /// End-to-end prover latency (ms).
    pub runtime_ms: f64,
    /// Die area (mm²).
    pub area_mm2: f64,
}

/// Result of the Fig. 10 sweep.
#[derive(Clone, Debug)]
pub struct FullSystemDse {
    /// Per-bandwidth-tier Pareto frontiers (same order as the space's
    /// bandwidth list).
    pub tier_fronts: Vec<Vec<FullSystemPoint>>,
    /// The global frontier across all tiers.
    pub global_front: Vec<FullSystemPoint>,
    /// Total configurations evaluated.
    pub evaluated: usize,
}

/// Derives the Forest size from the SumCheck unit (it must cover the
/// shared product-lane multipliers, §IV-B2, with headroom for tree work).
fn forest_for(sc: &SumcheckUnitConfig) -> ForestConfig {
    let lanes = sc.shared_lane_muls();
    ForestConfig {
        trees: (lanes.div_ceil(MULS_PER_TREE)).max(16) + 8,
    }
}

/// Runs the full-system DSE for a `2^mu`-gate workload.
pub fn full_system_dse(
    space: &DseSpace,
    gate: Gate,
    mu: usize,
    masking: bool,
    prime: PrimeMode,
) -> FullSystemDse {
    let n = 1u64 << mu;
    let zc_profile = gate.zerocheck_profile();
    let pc_profile = gate.permcheck_profile();
    let oc_profile = gate.opencheck_profile();
    let claims = gate.batch_eval_claims();
    let distinct = gate.distinct_polys();
    let w = gate.witness_columns();
    let combine_cfg = MleCombineConfig::default();

    let mut evaluated = 0usize;
    let mut tier_fronts = Vec::with_capacity(space.bandwidths.len());
    let mut front_configs: Vec<Vec<FullSystemPoint>> = Vec::new();

    for &bw in &space.bandwidths {
        let mem = MemoryConfig::new(bw);

        // --- Memoized SumCheck-side step times per SumCheck knob tuple ---
        struct ScEntry {
            cfg: SumcheckUnitConfig,
            zc_ms: f64,
            pc_ms: f64,
            oc_ms: f64,
            forest: ForestConfig,
            batch_ms: f64,
            pi_build_ms: f64,
        }
        let mut sc_entries = Vec::new();
        for &pes in &space.sumcheck_pes {
            for &ees in &space.ees {
                for &pls in &space.pls {
                    for &bank_words in &space.bank_words {
                        let cfg = SumcheckUnitConfig {
                            pes,
                            ees,
                            pls,
                            bank_words,
                            sparse_io: true,
                        };
                        let forest = forest_for(&cfg);
                        sc_entries.push(ScEntry {
                            cfg,
                            zc_ms: simulate_sumcheck(&zc_profile, mu, &cfg, &mem).ms(),
                            pc_ms: simulate_sumcheck(&pc_profile, mu, &cfg, &mem).ms(),
                            oc_ms: simulate_sumcheck(&oc_profile, mu, &cfg, &mem).ms(),
                            forest,
                            batch_ms: forest.batch_eval_cycles(claims, n, &mem) / 1e6,
                            pi_build_ms: forest.tree_product_cycles(n, &mem) / 1e6,
                        });
                    }
                }
            }
        }

        // --- Memoized MSM step times per MSM knob tuple ---
        struct MsmEntry {
            pes: usize,
            window_bits: usize,
            dense_ms: f64,
            sparse_ms: f64,
        }
        let mut msm_entries = Vec::new();
        for &pes in &space.msm_pes {
            for &window_bits in &space.windows {
                let cfg = MsmUnitConfig {
                    pes,
                    window_bits,
                    points_per_pe: space.points_per_pe[0],
                };
                msm_entries.push(MsmEntry {
                    pes,
                    window_bits,
                    dense_ms: simulate_msm(n, ScalarProfile::Dense, &cfg, &mem).cycles / 1e6,
                    sparse_ms: simulate_msm(n, ScalarProfile::SparseWitness, &cfg, &mem).cycles
                        / 1e6,
                });
            }
        }

        // --- Memoized PermQuotGen times ---
        let pq_entries: Vec<(usize, f64)> = space
            .frac_pes
            .iter()
            .map(|&pes| {
                let cfg = PermQuotConfig {
                    pes,
                    inverse_units: PermQuotConfig::PAPER_INVERSE_UNITS,
                };
                (pes, simulate_permquot(mu, w, &cfg, &mem).cycles / 1e6)
            })
            .collect();

        let combine_ms = combine_cfg.combine_cycles(distinct, n, &mem) / 1e6;

        // --- Cross-product assembly ---
        let mut tier_points: Vec<ParetoPoint> = Vec::new();
        let mut tier_configs: Vec<ZkphireConfig> = Vec::new();
        for sc in &sc_entries {
            for msm in &msm_entries {
                for &ppp in &space.points_per_pe {
                    for &(frac, pq_ms) in &pq_entries {
                        evaluated += 1;
                        let witness_ms = w as f64 * msm.sparse_ms;
                        let wiring_ms = 3.0 * msm.dense_ms;
                        let open_ms = 2.0 * msm.dense_ms;
                        let permquot_ms = pq_ms + sc.pi_build_ms;
                        let tail = sc.pc_ms + sc.batch_ms + sc.oc_ms + combine_ms + open_ms;
                        let runtime_ms = if masking {
                            witness_ms + permquot_ms + sc.zc_ms.max(wiring_ms) + tail
                        } else {
                            witness_ms + sc.zc_ms + permquot_ms + wiring_ms + tail
                        };
                        let config = ZkphireConfig {
                            sumcheck: sc.cfg,
                            msm: MsmUnitConfig {
                                pes: msm.pes,
                                window_bits: msm.window_bits,
                                points_per_pe: ppp,
                            },
                            forest: sc.forest,
                            permquot: PermQuotConfig {
                                pes: frac,
                                inverse_units: PermQuotConfig::PAPER_INVERSE_UNITS,
                            },
                            combine: combine_cfg,
                            mem,
                            prime,
                        };
                        let area_mm2 = config.area().total();
                        tier_points.push(ParetoPoint {
                            runtime_ms,
                            area_mm2,
                            bandwidth_gbps: bw,
                            config_index: tier_configs.len(),
                        });
                        tier_configs.push(config);
                    }
                }
            }
        }

        let front = pareto_front(tier_points);
        let materialized: Vec<FullSystemPoint> = front
            .iter()
            .map(|p| FullSystemPoint {
                config: tier_configs[p.config_index],
                runtime_ms: p.runtime_ms,
                area_mm2: p.area_mm2,
            })
            .collect();
        tier_fronts.push(front);
        front_configs.push(materialized);
    }

    // Global frontier across tiers.
    let mut all: Vec<FullSystemPoint> = front_configs.iter().flatten().copied().collect();
    all.sort_by(|a, b| a.runtime_ms.partial_cmp(&b.runtime_ms).expect("finite"));
    let mut global_front = Vec::new();
    let mut best_area = f64::INFINITY;
    for p in all {
        if p.area_mm2 < best_area {
            best_area = p.area_mm2;
            global_front.push(p);
        }
    }

    FullSystemDse {
        tier_fronts: front_configs,
        global_front,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_space_size() {
        // 6·6·6·6 SumCheck × 6·4·5 MSM × 4 FracMLE × 7 bandwidths.
        assert_eq!(DseSpace::default().size(), 1296 * 120 * 4 * 7);
    }

    #[test]
    fn quick_sweep_produces_fronts() {
        let dse = full_system_dse(
            &DseSpace::quick(),
            Gate::Jellyfish,
            18,
            true,
            PrimeMode::Fixed,
        );
        assert_eq!(dse.tier_fronts.len(), 2);
        assert!(!dse.global_front.is_empty());
        assert_eq!(dse.evaluated, DseSpace::quick().size());
        // Frontier monotonicity.
        for front in &dse.tier_fronts {
            for w in front.windows(2) {
                assert!(w[0].runtime_ms <= w[1].runtime_ms);
                assert!(w[0].area_mm2 >= w[1].area_mm2);
            }
        }
    }

    #[test]
    fn higher_bandwidth_reaches_lower_runtime() {
        let dse = full_system_dse(
            &DseSpace::quick(),
            Gate::Jellyfish,
            18,
            true,
            PrimeMode::Fixed,
        );
        let best_slow = dse.tier_fronts[0]
            .iter()
            .map(|p| p.runtime_ms)
            .fold(f64::INFINITY, f64::min);
        let best_fast = dse.tier_fronts[1]
            .iter()
            .map(|p| p.runtime_ms)
            .fold(f64::INFINITY, f64::min);
        assert!(best_fast < best_slow);
    }

    #[test]
    fn forest_always_covers_lanes() {
        let dse = full_system_dse(
            &DseSpace::quick(),
            Gate::Vanilla,
            16,
            false,
            PrimeMode::Fixed,
        );
        for front in &dse.tier_fronts {
            for p in front {
                assert!(p.config.forest_covers_lanes());
            }
        }
    }
}
