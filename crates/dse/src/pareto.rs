//! Pareto-frontier extraction over (runtime, area) design points
//! (paper Fig. 10).

/// A design point in the runtime/area plane, tagged with its bandwidth
/// tier and an opaque configuration index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParetoPoint {
    /// End-to-end runtime (ms).
    pub runtime_ms: f64,
    /// Die area (mm²).
    pub area_mm2: f64,
    /// Off-chip bandwidth (GB/s).
    pub bandwidth_gbps: f64,
    /// Index into the caller's configuration list.
    pub config_index: usize,
}

/// Extracts the Pareto-optimal subset: points not dominated in both
/// runtime and area, sorted by increasing runtime.
pub fn pareto_front(mut points: Vec<ParetoPoint>) -> Vec<ParetoPoint> {
    points.sort_by(|a, b| {
        a.runtime_ms
            .partial_cmp(&b.runtime_ms)
            .expect("finite runtimes")
            .then(a.area_mm2.partial_cmp(&b.area_mm2).expect("finite areas"))
    });
    let mut front: Vec<ParetoPoint> = Vec::new();
    let mut best_area = f64::INFINITY;
    for p in points {
        if p.area_mm2 < best_area {
            best_area = p.area_mm2;
            front.push(p);
        }
    }
    front
}

/// Merges per-bandwidth frontiers into the global frontier (the inset of
/// Fig. 10).
pub fn global_pareto(per_tier: &[Vec<ParetoPoint>]) -> Vec<ParetoPoint> {
    pareto_front(per_tier.iter().flatten().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(runtime_ms: f64, area_mm2: f64) -> ParetoPoint {
        ParetoPoint {
            runtime_ms,
            area_mm2,
            bandwidth_gbps: 1024.0,
            config_index: 0,
        }
    }

    #[test]
    fn dominated_points_removed() {
        let front = pareto_front(vec![p(10.0, 100.0), p(20.0, 200.0), p(5.0, 300.0)]);
        // (20, 200) is dominated by (10, 100).
        assert_eq!(front.len(), 2);
        assert!(front.iter().any(|q| q.runtime_ms == 5.0));
        assert!(front.iter().any(|q| q.runtime_ms == 10.0));
    }

    #[test]
    fn frontier_is_monotone() {
        let points: Vec<ParetoPoint> = (0..100)
            .map(|i| p(100.0 - i as f64 * 0.7, 10.0 + ((i * 37) % 89) as f64))
            .collect();
        let front = pareto_front(points);
        for w in front.windows(2) {
            assert!(w[0].runtime_ms <= w[1].runtime_ms);
            assert!(w[0].area_mm2 >= w[1].area_mm2);
        }
    }

    #[test]
    fn all_nondominated_kept() {
        let front = pareto_front(vec![p(1.0, 30.0), p(2.0, 20.0), p(3.0, 10.0)]);
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn global_merges_tiers() {
        let tier_a = vec![p(10.0, 100.0)];
        let tier_b = vec![p(5.0, 150.0), p(12.0, 90.0)];
        let global = global_pareto(&[tier_a, tier_b]);
        assert_eq!(global.len(), 3);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(Vec::new()).is_empty());
    }
}
