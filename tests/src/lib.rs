//! Cross-crate integration tests for the zkPHIRE workspace.
//!
//! The suites live in `tests/`: gate-library coverage (every Table I row
//! through the functional prover), model/functional consistency (shared
//! op-count oracle, scheduler invariants), full-system model invariants
//! and end-to-end protocol attacks.
