//! Source gate: the fleet engine, the serve front-end, and the
//! telemetry layer hold a no-panic contract on their non-test code —
//! anything that can go wrong comes back as a typed error (`SimError`,
//! `ServeError`) or degrades silently (a recorder must never take the
//! code it observes down), never an `.expect(...)` / `.unwrap()` panic
//! that kills a simulation, the live service, or an instrumented
//! prover thread.
//!
//! This scan is the enforcement: it walks `crates/fleet/src`,
//! `crates/serve/src`, and `crates/telemetry/src`, strips test modules
//! and comments, and fails on any surviving `.expect(` or
//! `.unwrap()`. Explicit
//! `panic!`/`assert!` builder validations and the documented panicking
//! *wrappers* (`EventQueue::push` over `try_push`) are allowed — the
//! contract bans the implicit panics, where the error message says
//! nothing about what broke.

use std::fs;
use std::path::{Path, PathBuf};

/// Collects `path:line: source` for every banned call outside test
/// code and comments.
fn scan_file(path: &Path, violations: &mut Vec<String>) {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    for (i, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        // Test modules sit at the bottom of each file by repo
        // convention; everything from the cfg(test) marker down is out
        // of scope for the gate.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        if line.contains(".expect(") || line.contains(".unwrap()") {
            violations.push(format!("{}:{}: {trimmed}", path.display(), i + 1));
        }
    }
}

fn scan_dir(dir: &Path, violations: &mut Vec<String>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read dir {}: {e}", dir.display()));
    let mut paths: Vec<PathBuf> = entries.map(|e| e.expect("dir entry").path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            scan_dir(&path, violations);
        } else if path.extension().is_some_and(|x| x == "rs") {
            scan_file(&path, violations);
        }
    }
}

#[test]
fn fleet_serve_and_telemetry_sources_never_panic_implicitly() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate lives one level below the workspace root");
    let mut violations = Vec::new();
    for crate_src in [
        "crates/fleet/src",
        "crates/serve/src",
        "crates/telemetry/src",
    ] {
        let dir = repo_root.join(crate_src);
        assert!(dir.is_dir(), "missing {}", dir.display());
        scan_dir(&dir, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "implicit panic paths in no-panic crates (use typed SimError/ServeError \
         returns instead):\n{}",
        violations.join("\n")
    );
}
