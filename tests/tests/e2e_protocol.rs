//! Integration: end-to-end HyperPlonk across the whole stack, including
//! attack scenarios that cut across crate boundaries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_field::Fr;
use zkphire_hyperplonk::{prove, setup, verify, Circuit, GateSystem, HyperPlonkError};
use zkphire_transcript::Transcript;

#[test]
fn both_gate_systems_roundtrip_at_several_sizes() {
    for (system, mu) in [
        (GateSystem::Vanilla, 4usize),
        (GateSystem::Vanilla, 7),
        (GateSystem::Jellyfish, 4),
        (GateSystem::Jellyfish, 6),
    ] {
        let mut rng = StdRng::seed_from_u64(42 + mu as u64);
        let (circuit, witness) = Circuit::random(system, mu, 0.5, &mut rng);
        let (pk, vk) = setup(circuit, &mut rng);
        let proof = prove(&pk, &witness, &mut Transcript::new(b"e2e"));
        verify(&vk, &proof, &mut Transcript::new(b"e2e"))
            .unwrap_or_else(|e| panic!("{system:?} mu={mu}: {e}"));
    }
}

#[test]
fn copy_constraint_violation_rejected_end_to_end() {
    // Break a wire copy (gate constraints still hold on the broken row's
    // inputs): only the permutation argument can catch this.
    let mut rng = StdRng::seed_from_u64(77);
    let (circuit, mut witness) = Circuit::random(GateSystem::Vanilla, 6, 0.9, &mut rng);
    let n = circuit.num_rows();
    let cell = circuit
        .sigma
        .iter()
        .enumerate()
        .find(|(i, &s)| *i != s)
        .map(|(i, _)| i)
        .expect("copy constraint exists");
    // Rewrite the copied input and re-derive the row's output so the gate
    // identity still holds; only σ-consistency is now broken.
    let (col, row) = (cell / n, cell % n);
    if col == circuit.system.num_witness_columns() - 1 {
        return; // output cells rewire differently; skip this seed's corner
    }
    let forged = witness.columns[col].evals()[row] + Fr::ONE;
    witness.columns[col].evals_mut()[row] = forged;
    // Recompute the output column for that row from the selectors.
    let w1 = witness.columns[0].evals()[row];
    let w2 = witness.columns[1].evals()[row];
    let ql = circuit.selectors[0].evals()[row];
    let qm = circuit.selectors[2].evals()[row];
    let qc = circuit.selectors[4].evals()[row];
    let out = ql * (w1 + w2) + qm * w1 * w2 + qc; // qL=qR in our generator
    if !circuit.selectors[3].evals()[row].is_zero() {
        witness.columns[2].evals_mut()[row] = out;
    }

    let (pk, vk) = setup(circuit, &mut rng);
    let proof = prove(&pk, &witness, &mut Transcript::new(b"e2e"));
    let result = verify(&vk, &proof, &mut Transcript::new(b"e2e"));
    assert!(result.is_err(), "copy violation must be rejected");
}

#[test]
fn proof_transplant_between_circuits_rejected() {
    // A valid proof for circuit A must not verify under circuit B's key.
    let mut rng = StdRng::seed_from_u64(5);
    let (circuit_a, witness_a) = Circuit::random(GateSystem::Vanilla, 5, 0.5, &mut rng);
    let (circuit_b, _) = Circuit::random(GateSystem::Vanilla, 5, 0.5, &mut rng);
    let (pk_a, _) = setup(circuit_a, &mut rng);
    let (_, vk_b) = setup(circuit_b, &mut rng);
    let proof = prove(&pk_a, &witness_a, &mut Transcript::new(b"e2e"));
    assert!(verify(&vk_b, &proof, &mut Transcript::new(b"e2e")).is_err());
}

#[test]
fn truncated_proof_shape_rejected() {
    let mut rng = StdRng::seed_from_u64(6);
    let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, 5, 0.5, &mut rng);
    let (pk, vk) = setup(circuit, &mut rng);
    let mut proof = prove(&pk, &witness, &mut Transcript::new(b"e2e"));
    proof.witness_commitments.pop();
    assert_eq!(
        verify(&vk, &proof, &mut Transcript::new(b"e2e")).unwrap_err(),
        HyperPlonkError::ShapeMismatch
    );
}

#[test]
fn proof_size_grows_logarithmically_with_circuit() {
    let sizes: Vec<usize> = [4usize, 7]
        .iter()
        .map(|&mu| {
            let mut rng = StdRng::seed_from_u64(9 + mu as u64);
            let (circuit, witness) = Circuit::random(GateSystem::Vanilla, mu, 0.5, &mut rng);
            let (pk, _) = setup(circuit, &mut rng);
            prove(&pk, &witness, &mut Transcript::new(b"e2e")).size_bytes()
        })
        .collect();
    // 8x the gates must cost far less than 8x the proof bytes.
    assert!(sizes[1] < 2 * sizes[0], "{sizes:?}");
}
