//! Integration tests for the live proving service (`zkphire-serve`):
//! graceful drain, admission agreement with the DES on a shared trace,
//! and retry-after-failure through a real prover.

use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_fleet::{simulate, FleetConfig, PolicyKind, RequestClass, RetryPolicy, TraceSource};
use zkphire_serve::{replay, ProvingService, ServeConfig, ServeError, ServeOpts};

fn tiny_class() -> RequestClass {
    RequestClass::new(Gate::Vanilla, 4)
}

fn tiny_opts() -> ServeOpts {
    ServeOpts::default()
        .with_prover_threads(1)
        .with_max_batch(4)
}

/// Graceful shutdown is a drain, not an abort: every admitted request
/// completes with a verified proof before `shutdown` returns.
#[test]
fn shutdown_drains_every_inflight_proof() {
    let class = tiny_class();
    let cfg = ServeConfig::new(vec![class])
        .with_seed(11)
        .with_opts(tiny_opts());
    let service = ProvingService::start(cfg).expect("startup");
    let submitted: u64 = 17;
    for _ in 0..submitted {
        service.submit(class, 0).expect("unbounded admission");
    }
    // Shutdown races the workers mid-queue: nothing may be dropped.
    let report = service.shutdown().expect("clean drain");
    assert_eq!(report.summary.arrivals, submitted);
    assert_eq!(report.summary.completed, submitted);
    assert_eq!(report.summary.rejected, 0);
    assert_eq!(report.summary.lost, 0);
    assert_eq!(report.records.len(), submitted as usize);
    let mut ids: Vec<u64> = report.records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..submitted).collect::<Vec<_>>(),
        "each id exactly once"
    );
    for r in &report.records {
        assert!(r.finish_ms >= r.start_ms && r.start_ms >= r.arrival_ms);
        assert!(r.batch_size >= 1);
    }
}

/// A 9:1 flood against a zero-cap flooder tenant: the live service and
/// the DES admit and reject *exactly* the same requests on the same
/// trace — cap decisions are policy, not timing.
#[test]
fn flood_rejections_match_the_simulator_exactly() {
    let class = tiny_class();
    let light = 0u32;
    let flooder = 1u32;
    // 90 flooder arrivals interleaved 9:1 with 10 light arrivals.
    let mut trace = Vec::new();
    for i in 0..100u32 {
        let tenant = if i % 10 == 9 { light } else { flooder };
        trace.push((f64::from(i) * 0.1, class, tenant));
    }
    let flood_count = trace.iter().filter(|(_, _, t)| *t == flooder).count() as u64;
    let light_count = trace.len() as u64 - flood_count;

    // Live side: replay the trace against a service capping the
    // flooder at zero queued requests.
    let cfg = ServeConfig::new(vec![class])
        .with_tenant_caps(vec![(flooder, 0)])
        .with_seed(23)
        .with_opts(tiny_opts());
    let service = ProvingService::start(cfg).expect("startup");
    let gen = replay(
        &service,
        &mut TraceSource::with_tenants(trace.clone()),
        1e4,
        1.0,
    )
    .expect("replay");
    let wall = service.shutdown().expect("clean drain");

    // DES side: identical trace, identical caps.
    let mut cost = CostModel::exemplar();
    let fleet_cfg = FleetConfig::new(1)
        .with_policy(PolicyKind::SizeClass)
        .with_max_batch(4)
        .with_tenant_caps(vec![(flooder, 0)]);
    let sim = simulate(&fleet_cfg, &mut TraceSource::with_tenants(trace), &mut cost)
        .expect("valid config");

    // A zero cap makes every flooder submission a rejection regardless
    // of queue timing, so the two sides must agree to the request.
    assert_eq!(gen.submitted, 100);
    assert_eq!(gen.rejected, flood_count);
    assert_eq!(gen.rejected_by_tenant.get(&flooder), Some(&flood_count));
    assert_eq!(wall.summary.rejected, sim.summary.rejected);
    assert_eq!(wall.summary.rejected, flood_count);
    assert_eq!(wall.summary.completed, sim.summary.completed);
    assert_eq!(wall.summary.completed, light_count);
    for tenant in [light, flooder] {
        let w = wall.summary.per_tenant.iter().find(|t| t.tenant == tenant);
        let s = sim.summary.per_tenant.iter().find(|t| t.tenant == tenant);
        let (w, s) = (w.expect("wall tenant"), s.expect("sim tenant"));
        assert_eq!(w.rejected, s.rejected, "tenant {tenant} rejections");
        assert_eq!(w.completed, s.completed, "tenant {tenant} completions");
    }
}

/// An injected worker failure loses the batch mid-proof; the retry
/// policy re-parks and re-proves it, and the rescued request still
/// completes with a proof that verified on the second attempt.
#[test]
fn injected_failure_retries_to_a_verified_proof() {
    let class = tiny_class();
    let mut cfg = ServeConfig::new(vec![class])
        .with_retry(RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 2.0,
            max_backoff_ms: 8.0,
            jitter: 0.0,
        })
        .with_fail_batches(vec![0])
        .with_seed(31)
        .with_opts(tiny_opts().with_workers(1));
    cfg.repair_ms = 10.0;
    let service = ProvingService::start(cfg).expect("startup");
    service.submit(class, 0).expect("admitted");
    let report = service.shutdown().expect("clean drain");
    // Workers verify every proof before reporting completion, so a
    // completed record IS a verified proof.
    assert_eq!(report.summary.completed, 1);
    assert_eq!(report.summary.lost, 0);
    assert_eq!(report.summary.chip_failures, 1);
    assert_eq!(report.summary.chip_repairs, 1);
    assert_eq!(report.summary.retries, 1);
    assert_eq!(report.records.len(), 1);
    assert_eq!(
        report.records[0].attempts, 1,
        "served on its second attempt"
    );
}

/// Without a retry policy an injected failure is terminal: the batch is
/// lost, counted, and conservation still holds at drain.
#[test]
fn injected_failure_without_retry_is_lost_not_hung() {
    let class = tiny_class();
    let mut cfg = ServeConfig::new(vec![class])
        .with_fail_batches(vec![0])
        .with_seed(37)
        .with_opts(tiny_opts().with_workers(1));
    cfg.repair_ms = 5.0;
    let service = ProvingService::start(cfg).expect("startup");
    service.submit(class, 0).expect("admitted");
    service.submit(class, 0).expect("admitted");
    let report = service.shutdown().expect("clean drain");
    assert_eq!(report.summary.arrivals, 2);
    assert_eq!(
        report.summary.completed + report.summary.lost,
        2,
        "every arrival reached a terminal outcome"
    );
    assert!(report.summary.lost >= 1, "the failed batch is lost");
    assert_eq!(report.summary.chip_failures, 1);
}

/// Submissions after shutdown began are refused with a typed error and
/// never counted as arrivals.
#[test]
fn post_shutdown_submissions_are_refused() {
    let class = tiny_class();
    let cfg = ServeConfig::new(vec![class])
        .with_seed(41)
        .with_opts(tiny_opts());
    let service = ProvingService::start(cfg).expect("startup");
    service.submit(class, 0).expect("admitted");
    // Shutdown consumes the service, so model the late submitter with a
    // second handle scope: flip admission first via a completed drain.
    let report = service.shutdown().expect("clean drain");
    assert_eq!(report.summary.arrivals, 1);

    // And a service whose queue capacity is zero still drains cleanly
    // when every submission was refused.
    let cfg = ServeConfig::new(vec![class])
        .with_seed(43)
        .with_opts(tiny_opts().with_queue_capacity(0));
    let service = ProvingService::start(cfg).expect("startup");
    let err = service.submit(class, 7).expect_err("nothing may queue");
    assert!(matches!(err, ServeError::QueueFull { capacity: 0 }));
    let report = service.shutdown().expect("clean drain");
    assert_eq!(report.summary.arrivals, 1);
    assert_eq!(report.summary.rejected, 1);
    assert_eq!(report.summary.completed, 0);
}
