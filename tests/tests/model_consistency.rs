//! Integration: the hardware model and the functional prover must agree
//! on polynomial structure and operation counts — they are driven by the
//! same composite IR, and this suite pins that contract.

use zkphire_core::memory::MemoryConfig;
use zkphire_core::profile::PolyProfile;
use zkphire_core::sched::{node_count, schedule};
use zkphire_core::sumcheck_unit::{simulate_sumcheck, SumcheckUnitConfig};
use zkphire_poly::{high_degree_gate, table1_gates};
use zkphire_sumcheck::count_ops;

fn test_config() -> SumcheckUnitConfig {
    SumcheckUnitConfig {
        pes: 8,
        ees: 4,
        pls: 5,
        bank_words: 1 << 12,
        sparse_io: true,
    }
}

#[test]
fn profile_mul_counts_match_functional_oracle() {
    // PolyProfile::total_muls == sumcheck::count_ops totals (+ Build-MLE).
    for gate in table1_gates() {
        let profile = PolyProfile::from_gate(&gate);
        for mu in [4usize, 8, 12] {
            let ops = count_ops(&gate.poly, mu);
            let mut expected = ops.total_muls() as f64;
            if profile.eq_slot.is_some() {
                expected += (1u64 << mu) as f64;
            }
            assert!(
                (profile.total_muls(mu) - expected).abs() < 1.0,
                "gate {} mu {mu}: profile {} vs oracle {expected}",
                gate.id,
                profile.total_muls(mu)
            );
        }
    }
}

#[test]
fn simulator_handles_every_gate() {
    let cfg = test_config();
    let mem = MemoryConfig::new(512.0);
    for gate in table1_gates() {
        let profile = PolyProfile::from_gate(&gate);
        let r = simulate_sumcheck(&profile, 16, &cfg, &mem);
        assert!(r.total_cycles > 0.0, "gate {}", gate.id);
        assert!(
            r.utilization > 0.0 && r.utilization <= 1.0,
            "gate {}",
            gate.id
        );
        assert_eq!(r.round_cycles.len(), 16);
    }
}

#[test]
fn simulator_is_monotone_in_problem_size() {
    let cfg = test_config();
    let mem = MemoryConfig::new(1024.0);
    for gate_id in [0usize, 20, 22] {
        let profile = PolyProfile::from_gate(&table1_gates()[gate_id]);
        let mut last = 0.0;
        for mu in 10..=20 {
            let t = simulate_sumcheck(&profile, mu, &cfg, &mem).total_cycles;
            assert!(t > last, "gate {gate_id} mu {mu}");
            last = t;
        }
    }
}

#[test]
fn schedule_covers_all_factors_for_all_gates() {
    for gate in table1_gates() {
        let profile = PolyProfile::from_gate(&gate);
        for ees in 2..=7 {
            let plan = schedule(&profile, ees, false);
            for (term, term_plan) in profile.terms.iter().zip(&plan.terms) {
                let covered: usize = term_plan.nodes.iter().map(|n| n.new_factors.len()).sum();
                assert_eq!(covered, term.factors.len(), "gate {} ees {ees}", gate.id);
                assert_eq!(
                    term_plan.nodes.len(),
                    node_count(term.factors.len(), ees),
                    "gate {} ees {ees}",
                    gate.id
                );
            }
            assert!(plan.tmp_buffers() <= 1, "gate {}", gate.id);
        }
    }
}

#[test]
fn degree_sweep_latency_has_scheduler_jumps() {
    // Fig. 8's defining property: latency jumps exactly where the node
    // count increments, and is non-decreasing in degree.
    let cfg = SumcheckUnitConfig {
        pes: 16,
        ees: 6,
        pls: 8,
        bank_words: 1 << 13,
        sparse_io: false,
    };
    let mem = MemoryConfig::new(4096.0); // compute-bound regime
    let mut last_latency = 0.0;
    let mut last_nodes = 0;
    for d in 2..=30 {
        let profile = PolyProfile::from_gate(&high_degree_gate(d));
        let t = simulate_sumcheck(&profile, 20, &cfg, &mem).total_cycles;
        let nodes = node_count(d, 6);
        assert!(t >= last_latency, "degree {d} regressed");
        if nodes > last_nodes && last_nodes > 0 {
            // A new scheduler node must cost a visible jump.
            assert!(
                t > last_latency * 1.05,
                "degree {d}: no jump at node boundary"
            );
        }
        last_latency = t;
        last_nodes = nodes;
    }
}

#[test]
fn sparse_io_only_helps() {
    let mem = MemoryConfig::new(128.0);
    let mut dense_cfg = test_config();
    dense_cfg.sparse_io = false;
    for gate_id in [0usize, 20, 22] {
        let profile = PolyProfile::from_gate(&table1_gates()[gate_id]);
        let sparse = simulate_sumcheck(&profile, 18, &test_config(), &mem).total_cycles;
        let dense = simulate_sumcheck(&profile, 18, &dense_cfg, &mem).total_cycles;
        assert!(sparse <= dense, "gate {gate_id}");
    }
}
