//! Integration: full-system model invariants — protocol composition,
//! masking, design-space exploration and the paper's headline relations.

use zkphire_core::protocol::{simulate_protocol, Gate};
use zkphire_core::system::ZkphireConfig;
use zkphire_core::tech::PrimeMode;
use zkphire_core::workloads::all_workloads;
use zkphire_dse::{full_system_dse, DseSpace};

#[test]
fn protocol_total_equals_sum_of_steps_unmasked() {
    let cfg = ZkphireConfig::exemplar();
    let r = simulate_protocol(&cfg, Gate::Jellyfish, 20, false);
    let sum = r.msm_ms() + r.sumcheck_ms() + r.other_ms();
    assert!(
        (r.total_ms - sum).abs() / sum < 1e-9,
        "{} vs {sum}",
        r.total_ms
    );
}

#[test]
fn masking_saves_at_most_the_zerocheck() {
    let cfg = ZkphireConfig::exemplar();
    for mu in [16usize, 20, 24] {
        let plain = simulate_protocol(&cfg, Gate::Jellyfish, mu, false);
        let masked = simulate_protocol(&cfg, Gate::Jellyfish, mu, true);
        let saving = plain.total_ms - masked.total_ms;
        assert!(saving >= 0.0);
        assert!(saving <= plain.zerocheck_ms + 1e-9, "mu {mu}");
    }
}

#[test]
fn jellyfish_beats_vanilla_at_iso_application() {
    // Table VIII's premise at every published workload pair.
    let cfg = ZkphireConfig::exemplar();
    for w in all_workloads() {
        if let (Some(v), Some(j)) = (w.vanilla_log2, w.jellyfish_log2) {
            if v > 26 {
                continue; // keep the test fast; large sizes covered below
            }
            let vanilla = simulate_protocol(&cfg, Gate::Vanilla, v, true).total_ms;
            let jellyfish = simulate_protocol(&cfg, Gate::Jellyfish, j, true).total_ms;
            assert!(
                jellyfish < vanilla,
                "{}: jellyfish {jellyfish} >= vanilla {vanilla}",
                w.name
            );
        }
    }
}

#[test]
fn scales_to_2_pow_30_constraints() {
    // The paper's scalability claim: proofs for 2^30 nominal gates.
    let cfg = ZkphireConfig::exemplar();
    let r = simulate_protocol(&cfg, Gate::Vanilla, 30, true);
    assert!(r.total_ms.is_finite() && r.total_ms > 0.0);
    // Roughly linear from 2^24 (within 2x of perfect scaling).
    let base = simulate_protocol(&cfg, Gate::Vanilla, 24, true);
    let ratio = r.total_ms / base.total_ms;
    assert!(ratio > 32.0 && ratio < 128.0, "ratio {ratio}");
}

#[test]
fn speedup_vs_cpu_anchor_is_three_orders() {
    // Table VII's headline: ~1000-1800x per workload against the paper's
    // measured CPU runtimes.
    let cfg = ZkphireConfig::exemplar();
    for w in all_workloads() {
        let (Some(j), Some(cpu)) = (w.jellyfish_log2, w.cpu_jellyfish_ms) else {
            continue;
        };
        let ours = simulate_protocol(&cfg, Gate::Jellyfish, j, true).total_ms;
        let speedup = cpu / ours;
        assert!(
            speedup > 300.0 && speedup < 5000.0,
            "{}: speedup {speedup}",
            w.name
        );
    }
}

#[test]
fn dse_fronts_dominate_exemplar_neighbourhood() {
    // Any Pareto point must not be dominated by the exemplar.
    let dse = full_system_dse(
        &DseSpace::quick(),
        Gate::Jellyfish,
        20,
        true,
        PrimeMode::Fixed,
    );
    let ex = ZkphireConfig::exemplar();
    let ex_runtime = simulate_protocol(&ex, Gate::Jellyfish, 20, true).total_ms;
    let ex_area = ex.area().total();
    for front in &dse.tier_fronts {
        for p in front {
            let dominated = p.runtime_ms > ex_runtime && p.area_mm2 > ex_area
                // same tier only — cross-tier PHY areas differ
                && (p.config.mem.bandwidth_gbps - 2048.0).abs() < 1.0;
            assert!(!dominated, "front point dominated by exemplar");
        }
    }
}

#[test]
fn global_front_subset_of_tier_fronts() {
    let dse = full_system_dse(
        &DseSpace::quick(),
        Gate::Vanilla,
        18,
        false,
        PrimeMode::Fixed,
    );
    for g in &dse.global_front {
        let found = dse.tier_fronts.iter().flatten().any(|p| {
            (p.runtime_ms - g.runtime_ms).abs() < 1e-12 && (p.area_mm2 - g.area_mm2).abs() < 1e-12
        });
        assert!(found, "global point missing from tier fronts");
    }
}

#[test]
fn higher_degree_gate_system_costs_more_sumcheck_share() {
    let cfg = ZkphireConfig::exemplar();
    let vanilla = simulate_protocol(&cfg, Gate::Vanilla, 22, false);
    let jellyfish = simulate_protocol(&cfg, Gate::Jellyfish, 22, false);
    // At equal gate count, the degree-7 Jellyfish composite spends more
    // absolute time in SumCheck than the degree-4 Vanilla one.
    assert!(jellyfish.sumcheck_ms() > vanilla.sumcheck_ms());
}
