//! Property-based integration tests: randomized structures exercised
//! across crate boundaries (expression language → IR → prover → verifier,
//! IR → scheduler/simulator, and traffic → fleet DES → metrics).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_core::memory::MemoryConfig;
use zkphire_core::profile::PolyProfile;
use zkphire_core::sched::{node_count, schedule};
use zkphire_core::sumcheck_unit::{simulate_sumcheck, SumcheckUnitConfig};
use zkphire_field::Fr;
use zkphire_poly::expr::{konst, var, GateExpr};
use zkphire_poly::{Mle, MleKind};
use zkphire_sumcheck::{prove, verify_with_oracle};
use zkphire_transcript::Transcript;

/// Random gate expressions over `num_vars` variables.
fn arb_expr(num_vars: usize) -> impl Strategy<Value = GateExpr> {
    let leaf = prop_oneof![(0..num_vars).prop_map(var), (-3i64..4).prop_map(konst)];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner, 1u32..4).prop_map(|(a, k)| a.pow(k)),
        ]
    })
}

fn random_mles(n: usize, mu: usize, seed: u64) -> Vec<Mle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Mle::from_fn(mu, |_| Fr::random(&mut rng)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any expressible gate round-trips through the full SumCheck stack.
    #[test]
    fn random_gate_sumcheck_roundtrip(e in arb_expr(3), seed in 0u64..1000) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0);
        let mu = 4;
        let mles = random_mles(poly.num_mles().max(1), mu, seed);
        let mut tp = Transcript::new(b"prop");
        let out = prove(&poly, mles.clone(), &mut tp);
        prop_assert_eq!(out.proof.claimed_sum, poly.sum_over_hypercube(&mles));
        let mut tv = Transcript::new(b"prop");
        prop_assert!(verify_with_oracle(&poly, &mles, &out.proof, &mut tv).is_ok());
    }

    /// A tampered claim from any random gate is rejected.
    #[test]
    fn random_gate_tamper_rejected(e in arb_expr(3), seed in 0u64..1000) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0 && poly.degree() >= 1);
        let mles = random_mles(poly.num_mles().max(1), 4, seed);
        let mut tp = Transcript::new(b"prop");
        let mut out = prove(&poly, mles, &mut tp);
        out.proof.round_evals[1][0] += Fr::ONE;
        let mut tv = Transcript::new(b"prop");
        prop_assert!(zkphire_sumcheck::verify(&poly, 4, &out.proof, &mut tv).is_err());
    }

    /// The scheduler covers every factor exactly once for any gate shape,
    /// with one Tmp buffer, for every EE count.
    #[test]
    fn random_gate_schedules_cleanly(e in arb_expr(4), ees in 2usize..8) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0 && poly.degree() >= 1);
        let kinds = vec![MleKind::Dense; poly.num_mles()];
        let profile = PolyProfile::from_composite(&poly, &kinds, "prop");
        let plan = schedule(&profile, ees, false);
        for (term, term_plan) in profile.terms.iter().zip(&plan.terms) {
            let covered: usize = term_plan.nodes.iter().map(|n| n.new_factors.len()).sum();
            prop_assert_eq!(covered, term.factors.len());
            prop_assert_eq!(term_plan.nodes.len(), node_count(term.factors.len(), ees));
        }
        prop_assert!(plan.tmp_buffers() <= 1);
    }

    /// The simulator accepts any expressible gate and behaves sanely:
    /// positive runtime, utilization in (0, 1], monotone in table size.
    #[test]
    fn random_gate_simulates(e in arb_expr(3), pls in 3usize..9) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0 && poly.degree() >= 1);
        let kinds = vec![MleKind::Dense; poly.num_mles()];
        let profile = PolyProfile::from_composite(&poly, &kinds, "prop");
        let cfg = SumcheckUnitConfig {
            pes: 8,
            ees: 4,
            pls,
            bank_words: 1 << 12,
            sparse_io: false,
        };
        let mem = MemoryConfig::new(512.0);
        let small = simulate_sumcheck(&profile, 12, &cfg, &mem);
        let large = simulate_sumcheck(&profile, 14, &cfg, &mem);
        prop_assert!(small.total_cycles > 0.0);
        prop_assert!(small.utilization > 0.0 && small.utilization <= 1.0);
        prop_assert!(large.total_cycles > small.total_cycles);
    }

    /// MLE identity across crates: fixing variables one at a time agrees
    /// with direct evaluation for arbitrary points.
    #[test]
    fn mle_fix_chain_matches_evaluate(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mu = 5;
        let f = Mle::from_fn(mu, |_| Fr::random(&mut rng));
        let point: Vec<Fr> = (0..mu).map(|_| Fr::random(&mut rng)).collect();
        let mut g = f.clone();
        for &r in &point {
            g = g.fix_first_variable(r);
        }
        prop_assert_eq!(g.evals()[0], f.evaluate(&point));
    }
}

// --- fleet DES properties: random ON/OFF traffic through the full
// admission → fairness → autoscaled-pool pipeline ---

use zkphire_core::costdb::CostModel;
use zkphire_fleet::{
    simulate, AutoscaleConfig, BrownOutConfig, FaultConfig, FleetConfig, OnOffSource, PolicyKind,
    RetryPolicy, ScaleKind, TenantMix, TenantProfile, TraceEntry, WorkloadMix,
};

/// A randomized two-tenant burst source; runs short enough that each
/// property case finishes in milliseconds.
fn burst_source(seed: u64) -> (TenantMix, OnOffSource) {
    let tm = TenantMix::new(vec![
        TenantProfile::new(1, 2.0, WorkloadMix::table_vii_jellyfish(18)),
        TenantProfile::new(2, 1.0, WorkloadMix::table_vii_jellyfish(20)),
    ]);
    let source = OnOffSource::new(600.0, 300.0, 600.0, 2_500.0, tm.clone(), seed);
    (tm, source)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation under any policy, queue bound and burst seed:
    /// every arrival is admitted or rejected, every admission is
    /// served exactly once (the sim drains, so in-flight is zero at
    /// the end), and the per-tenant slices tile the global counts.
    #[test]
    fn fleet_conserves_requests(seed in 0u64..400, cap in 1usize..24, chips in 1usize..4, pol in 0usize..4) {
        let policy = [
            PolicyKind::Fifo,
            PolicyKind::SizeClass,
            PolicyKind::EarliestDeadline,
            PolicyKind::WeightedFair,
        ][pol];
        let mut cost = CostModel::exemplar();
        let (tm, mut source) = burst_source(seed);
        let cfg = FleetConfig::new(chips)
            .with_policy(policy)
            .with_queue_capacity(cap)
            .with_tenant_weights(tm.service_weights());
        let r = simulate(&cfg, &mut source, &mut cost).expect("valid config");
        let arrivals = r
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEntry::Admitted { .. } | TraceEntry::Rejected { .. }))
            .count() as u64;
        prop_assert_eq!(arrivals, r.summary.completed + r.summary.rejected);
        prop_assert_eq!(r.records.len() as u64, r.summary.completed);
        // No id served twice.
        let mut ids: Vec<u64> = r.records.iter().map(|rec| rec.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, r.summary.completed);
        // Per-tenant slices tile the global counts.
        let by_tenant_completed: u64 = r.summary.per_tenant.iter().map(|t| t.completed).sum();
        let by_tenant_rejected: u64 = r.summary.per_tenant.iter().map(|t| t.rejected).sum();
        prop_assert_eq!(by_tenant_completed, r.summary.completed);
        prop_assert_eq!(by_tenant_rejected, r.summary.rejected);
        // Metrics never go NaN, even for starved runs.
        prop_assert!(!r.summary.p99_latency_ms.is_nan());
        prop_assert!(!r.summary.jain_fairness.is_nan());
    }

    /// The autoscaler never takes the online pool outside
    /// `[min_chips, max_chips]`, at any instant of any random run —
    /// replayed from the chip power-transition trace — and two runs of
    /// the same seed produce identical traces.
    #[test]
    fn autoscaler_respects_bounds(seed in 0u64..400, min in 1usize..3, span in 0usize..5, kindsel in 0usize..2, spin in 0usize..3) {
        let max = min + span;
        let kind = if kindsel == 0 {
            ScaleKind::QueueDepth { up_depth: 3, down_depth: 0 }
        } else {
            ScaleKind::UtilizationTarget { low: 0.25, high: 0.9 }
        };
        let spin_up_ms = [5.0, 40.0, 150.0][spin];
        let run = |seed: u64| {
            let mut cost = CostModel::exemplar();
            let (tm, mut source) = burst_source(seed);
            let cfg = FleetConfig::new(1)
                .with_policy(PolicyKind::WeightedFair)
                .with_tenant_weights(tm.service_weights())
                .with_autoscale(
                    AutoscaleConfig::new(kind, min, max)
                        .with_spin_up_ms(spin_up_ms)
                        .with_cooldown_ms(spin_up_ms)
                        .with_interval_ms(20.0),
                );
            simulate(&cfg, &mut source, &mut cost).expect("valid config")
        };
        let r = run(seed);
        // Initial pool = cfg.chips clamped into the bounds.
        let mut online = 1usize.clamp(min, max) as i64;
        for e in &r.trace {
            match e {
                TraceEntry::ChipUp { .. } => online += 1,
                TraceEntry::ChipDown { .. } => online -= 1,
                _ => {}
            }
            prop_assert!(
                (min as i64..=max as i64).contains(&online),
                "pool {} outside [{}, {}]", online, min, max
            );
        }
        prop_assert!(r.summary.peak_chips <= max);
        prop_assert!(r.summary.mean_chips <= max as f64 + 1e-9);
        prop_assert!(r.summary.mean_chips >= min as f64 - 1e-9);
        // Determinism: an identical second run yields an identical trace.
        let again = run(seed);
        prop_assert_eq!(r.trace_hash, again.trace_hash);
        prop_assert_eq!(r.trace.len(), again.trace.len());
    }

    /// Resilience invariants under random chip failures, retries,
    /// per-tenant caps and brown-out, for any seed and knob draw:
    ///
    /// * conservation — `arrivals == completed + rejected + shed +
    ///   lost` with nothing in flight at drain,
    /// * retries bounded — no request records or traces an attempt
    ///   past the configured budget,
    /// * replay — the failure/repair schedule is bit-identical for the
    ///   same `(config, seed)`.
    #[test]
    fn faulty_fleet_conserves_and_replays(
        seed in 0u64..300,
        fault_seed in 0u64..300,
        budget in 0u32..4,
        mtbf in 200u64..2_000,
        chips in 2usize..5,
        cap in 4usize..32,
    ) {
        let mtbf_ms = mtbf as f64;
        let run = || {
            let mut cost = CostModel::exemplar();
            let (tm, mut source) = burst_source(seed);
            let cfg = FleetConfig::new(chips)
                .with_policy(PolicyKind::WeightedFair)
                .with_tenant_weights(tm.service_weights())
                .with_queue_capacity(cap)
                .with_tenant_caps(vec![(1, cap / 2 + 1)])
                .with_faults(FaultConfig::random(mtbf_ms, mtbf_ms / 4.0, fault_seed))
                .with_retry(RetryPolicy::new(budget))
                .with_brown_out(BrownOutConfig::new(1.0, 8));
            simulate(&cfg, &mut source, &mut cost).expect("valid config")
        };
        let r = run();
        let s = &r.summary;
        prop_assert_eq!(s.arrivals, s.completed + s.rejected + s.shed + s.lost);
        prop_assert_eq!(r.records.len() as u64, s.completed);
        prop_assert!(r.records.iter().all(|rec| rec.attempts <= budget));
        for e in &r.trace {
            if let TraceEntry::Retried { attempt, .. } = e {
                prop_assert!(*attempt <= budget, "retry {} over budget {}", attempt, budget);
            }
        }
        // Per-tenant terminal outcomes tile the global counts.
        let tiles = |f: fn(&zkphire_fleet::TenantSummary) -> u64, total: u64| {
            s.per_tenant.iter().map(f).sum::<u64>() == total
        };
        prop_assert!(tiles(|t| t.completed, s.completed));
        prop_assert!(tiles(|t| t.rejected, s.rejected));
        prop_assert!(tiles(|t| t.shed, s.shed));
        prop_assert!(tiles(|t| t.lost, s.lost));
        // Failures repair by drain (the run outlives every outage), and
        // goodput never exceeds throughput.
        prop_assert!(s.chip_repairs <= s.chip_failures);
        prop_assert!(s.goodput_rps <= s.throughput_rps + 1e-9);
        // Bit-identical replay of the whole failure/retry schedule.
        let again = run();
        prop_assert_eq!(r.trace_hash, again.trace_hash);
        prop_assert_eq!(&r.trace, &again.trace);
    }

    /// Per-tenant caps compose with the shared queue bound: the
    /// stricter constraint always wins, so a zero shared capacity
    /// rejects everything no matter how generous the tenant caps are.
    #[test]
    fn tenant_caps_compose_with_shared_capacity(seed in 0u64..200, tcap in 1usize..64) {
        let mut cost = CostModel::exemplar();
        let (tm, mut source) = burst_source(seed);
        let cfg = FleetConfig::new(2)
            .with_tenant_weights(tm.service_weights())
            .with_queue_capacity(0)
            .with_default_tenant_cap(tcap);
        let r = simulate(&cfg, &mut source, &mut cost).expect("valid config");
        prop_assert_eq!(r.summary.completed, 0);
        prop_assert_eq!(r.summary.rejected, r.summary.arrivals);
        prop_assert!(r.records.is_empty());
    }
}
