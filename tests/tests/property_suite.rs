//! Property-based integration tests: randomized structures exercised
//! across crate boundaries (expression language → IR → prover → verifier,
//! and IR → scheduler/simulator).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_core::memory::MemoryConfig;
use zkphire_core::profile::PolyProfile;
use zkphire_core::sched::{node_count, schedule};
use zkphire_core::sumcheck_unit::{simulate_sumcheck, SumcheckUnitConfig};
use zkphire_field::Fr;
use zkphire_poly::expr::{konst, var, GateExpr};
use zkphire_poly::{Mle, MleKind};
use zkphire_sumcheck::{prove, verify_with_oracle};
use zkphire_transcript::Transcript;

/// Random gate expressions over `num_vars` variables.
fn arb_expr(num_vars: usize) -> impl Strategy<Value = GateExpr> {
    let leaf = prop_oneof![(0..num_vars).prop_map(var), (-3i64..4).prop_map(konst)];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner, 1u32..4).prop_map(|(a, k)| a.pow(k)),
        ]
    })
}

fn random_mles(n: usize, mu: usize, seed: u64) -> Vec<Mle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Mle::from_fn(mu, |_| Fr::random(&mut rng)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any expressible gate round-trips through the full SumCheck stack.
    #[test]
    fn random_gate_sumcheck_roundtrip(e in arb_expr(3), seed in 0u64..1000) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0);
        let mu = 4;
        let mles = random_mles(poly.num_mles().max(1), mu, seed);
        let mut tp = Transcript::new(b"prop");
        let out = prove(&poly, mles.clone(), &mut tp);
        prop_assert_eq!(out.proof.claimed_sum, poly.sum_over_hypercube(&mles));
        let mut tv = Transcript::new(b"prop");
        prop_assert!(verify_with_oracle(&poly, &mles, &out.proof, &mut tv).is_ok());
    }

    /// A tampered claim from any random gate is rejected.
    #[test]
    fn random_gate_tamper_rejected(e in arb_expr(3), seed in 0u64..1000) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0 && poly.degree() >= 1);
        let mles = random_mles(poly.num_mles().max(1), 4, seed);
        let mut tp = Transcript::new(b"prop");
        let mut out = prove(&poly, mles, &mut tp);
        out.proof.round_evals[1][0] += Fr::ONE;
        let mut tv = Transcript::new(b"prop");
        prop_assert!(zkphire_sumcheck::verify(&poly, 4, &out.proof, &mut tv).is_err());
    }

    /// The scheduler covers every factor exactly once for any gate shape,
    /// with one Tmp buffer, for every EE count.
    #[test]
    fn random_gate_schedules_cleanly(e in arb_expr(4), ees in 2usize..8) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0 && poly.degree() >= 1);
        let kinds = vec![MleKind::Dense; poly.num_mles()];
        let profile = PolyProfile::from_composite(&poly, &kinds, "prop");
        let plan = schedule(&profile, ees, false);
        for (term, term_plan) in profile.terms.iter().zip(&plan.terms) {
            let covered: usize = term_plan.nodes.iter().map(|n| n.new_factors.len()).sum();
            prop_assert_eq!(covered, term.factors.len());
            prop_assert_eq!(term_plan.nodes.len(), node_count(term.factors.len(), ees));
        }
        prop_assert!(plan.tmp_buffers() <= 1);
    }

    /// The simulator accepts any expressible gate and behaves sanely:
    /// positive runtime, utilization in (0, 1], monotone in table size.
    #[test]
    fn random_gate_simulates(e in arb_expr(3), pls in 3usize..9) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0 && poly.degree() >= 1);
        let kinds = vec![MleKind::Dense; poly.num_mles()];
        let profile = PolyProfile::from_composite(&poly, &kinds, "prop");
        let cfg = SumcheckUnitConfig {
            pes: 8,
            ees: 4,
            pls,
            bank_words: 1 << 12,
            sparse_io: false,
        };
        let mem = MemoryConfig::new(512.0);
        let small = simulate_sumcheck(&profile, 12, &cfg, &mem);
        let large = simulate_sumcheck(&profile, 14, &cfg, &mem);
        prop_assert!(small.total_cycles > 0.0);
        prop_assert!(small.utilization > 0.0 && small.utilization <= 1.0);
        prop_assert!(large.total_cycles > small.total_cycles);
    }

    /// MLE identity across crates: fixing variables one at a time agrees
    /// with direct evaluation for arbitrary points.
    #[test]
    fn mle_fix_chain_matches_evaluate(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mu = 5;
        let f = Mle::from_fn(mu, |_| Fr::random(&mut rng));
        let point: Vec<Fr> = (0..mu).map(|_| Fr::random(&mut rng)).collect();
        let mut g = f.clone();
        for &r in &point {
            g = g.fix_first_variable(r);
        }
        prop_assert_eq!(g.evals()[0], f.evaluate(&point));
    }
}
