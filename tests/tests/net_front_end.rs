//! Integration tests for the TCP front-end (`zkphire-serve`'s `net` +
//! `codec` modules): framed happy path with conservation across the
//! wire, distinct wire-level rejection reasons, chaos survival with no
//! wedged slots, and the typed double-shutdown contract.

use std::time::Duration;

use zkphire_core::protocol::Gate;
use zkphire_fleet::{Outcome, RequestClass};
use zkphire_serve::{
    chaos, ChaosMode, NetClient, NetServer, ServeConfig, ServeError, ServeOpts, SubmitResult,
};

fn tiny_class() -> RequestClass {
    RequestClass::new(Gate::Vanilla, 4)
}

fn net_opts() -> ServeOpts {
    ServeOpts::default()
        .with_prover_threads(1)
        .with_max_batch(4)
        .with_max_conns(2)
        .with_read_timeout_ms(150)
        .with_idle_timeout_ms(5000)
}

const VERDICT_WAIT: Duration = Duration::from_millis(10_000);
const DRAIN_WAIT: Duration = Duration::from_millis(30_000);

/// Happy path over loopback: submits stream back their outcomes, the
/// client's records bitwise-match what the server accounted, and the
/// drain report conserves every arrival.
#[test]
fn framed_submits_round_trip_with_exact_accounting() {
    let class = tiny_class();
    let cfg = ServeConfig::new(vec![class])
        .with_seed(21)
        .with_opts(net_opts());
    let mut server = NetServer::start(cfg).expect("startup");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let n: u64 = 6;
    let mut ids = Vec::new();
    for _ in 0..n {
        match client.submit(class, 0, VERDICT_WAIT).expect("verdict") {
            SubmitResult::Accepted { id, .. } => ids.push(id),
            SubmitResult::Rejected { reason, .. } => {
                panic!("unbounded admission rejected: {}", reason.as_str())
            }
        }
    }
    let outcomes = client.finish(DRAIN_WAIT).expect("drain to Bye");
    assert_eq!(
        outcomes.len(),
        n as usize,
        "one outcome per accepted submit"
    );
    let report = server.shutdown().expect("clean shutdown");

    assert_eq!(report.serve.summary.arrivals, n);
    assert_eq!(report.serve.summary.completed, n);
    assert_eq!(report.serve.summary.lost, 0);
    assert_eq!(report.stats.conns_accepted, 1);
    assert_eq!(report.stats.submits, n);
    assert_eq!(report.stats.accepted_submits, n);
    assert_eq!(report.stats.outcomes_streamed, n);
    assert_eq!(report.stats.outcomes_dropped, 0);

    // The wire carried each outcome's f64 payloads as raw bits: the
    // client's rebuilt records must bitwise-match the server's drain
    // records for the same ids.
    for rec in &outcomes {
        assert!(ids.contains(&rec.id));
        assert_eq!(rec.outcome, Outcome::Completed);
        let server_rec = report
            .serve
            .records
            .iter()
            .find(|r| r.id == rec.id)
            .expect("server has the record");
        assert_eq!(
            rec.latency_ms.to_bits(),
            server_rec.latency_ms().to_bits(),
            "latency survives the wire bit-exact"
        );
    }
}

/// Tenant-cap and queue-full refusals arrive as *distinct* wire
/// reasons, each carrying a positive retry-after hint.
#[test]
fn rejection_reasons_are_distinct_on_the_wire() {
    let class = tiny_class();
    // Worker pool of one, tenant 1 capped at zero, shared queue capped
    // tightly: tenant-cap fires for tenant 1, queue-full for tenant 0
    // once enough work stacks up.
    let cfg = ServeConfig::new(vec![class])
        .with_seed(22)
        .with_tenant_caps(vec![(1, 0)])
        .with_opts(net_opts().with_workers(1).with_queue_capacity(1));
    let mut server = NetServer::start(cfg).expect("startup");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let capped = client.submit(class, 1, VERDICT_WAIT).expect("verdict");
    match capped {
        SubmitResult::Rejected {
            reason,
            retry_after_ms,
        } => {
            assert_eq!(reason.as_str(), "tenant_cap");
            assert!(retry_after_ms >= 1);
        }
        SubmitResult::Accepted { .. } => panic!("zero-cap tenant admitted"),
    }

    // Fill the queue for tenant 0 until the capacity refusal shows up.
    let mut saw_queue_full = false;
    for _ in 0..32 {
        match client.submit(class, 0, VERDICT_WAIT).expect("verdict") {
            SubmitResult::Accepted { .. } => {}
            SubmitResult::Rejected {
                reason,
                retry_after_ms,
            } => {
                assert_eq!(reason.as_str(), "queue_full");
                assert!(retry_after_ms >= 1);
                saw_queue_full = true;
                break;
            }
        }
    }
    assert!(saw_queue_full, "tight queue never refused");

    let outcomes = client.finish(DRAIN_WAIT).expect("drain");
    let report = server.shutdown().expect("clean shutdown");
    // Wire-side and server-side admission agree exactly.
    assert_eq!(
        report.stats.accepted_submits,
        outcomes.len() as u64,
        "every accepted submit streamed an outcome"
    );
    assert_eq!(
        report.serve.summary.rejected, report.stats.rejected_submits,
        "server counted the same refusals the wire carried"
    );
}

/// Every chaos mode ends in a typed error or clean close, the slots it
/// abused are reusable afterwards (no wedge), and the post-chaos drain
/// still conserves all accounting.
#[test]
fn chaos_modes_never_wedge_the_server() {
    let class = tiny_class();
    let opts = net_opts();
    let cfg = ServeConfig::new(vec![class]).with_seed(23).with_opts(opts);
    let mut server = NetServer::start(cfg).expect("startup");
    let addr = server.local_addr();

    for (i, mode) in ChaosMode::ALL.into_iter().enumerate() {
        let verdict = chaos(addr, mode, 0x9E37 + i as u64, class, &opts).expect("chaos transport");
        assert!(
            !verdict.contains("NO-CLOSE") && !verdict.contains("UNEXPECTED"),
            "{}: {verdict}",
            mode.as_str()
        );
        // Let abused handler slots re-register before the next mode —
        // the flood mode in particular needs the full pool idle.
        std::thread::sleep(Duration::from_millis(100));
    }

    // No wedge: a well-behaved client still gets a slot and a proof.
    let mut probe = NetClient::connect(addr).expect("post-chaos connect");
    match probe.submit(class, 0, VERDICT_WAIT).expect("verdict") {
        SubmitResult::Accepted { .. } => {}
        SubmitResult::Rejected { reason, .. } => {
            panic!("post-chaos probe rejected: {}", reason.as_str())
        }
    }
    let outcomes = probe.finish(DRAIN_WAIT).expect("post-chaos drain");
    assert_eq!(outcomes.len(), 1);

    let report = server.shutdown().expect("clean shutdown");
    let s = &report.stats;
    assert!(s.protocol_errors >= 2, "garbage + oversized: {s:?}");
    assert_eq!(s.stalled_closes, 1, "{s:?}");
    assert_eq!(s.truncated_closes, 1, "{s:?}");
    assert_eq!(s.disconnects, 1, "{s:?}");
    assert!(s.conns_refused >= 1, "flood past the cap: {s:?}");
    // The mid-proof disconnect's outcome was dropped at the router but
    // conserved in the report: arrivals all account to a terminal
    // outcome, nothing lost.
    assert_eq!(s.outcomes_dropped, 1, "{s:?}");
    let sum = &report.serve.summary;
    assert_eq!(sum.lost, 0);
    assert_eq!(
        sum.arrivals,
        sum.completed + sum.rejected + sum.shed + sum.lost,
        "conservation with the network in the loop"
    );
}

/// The shutdown contract is typed: a second drain is
/// [`ServeError::AlreadyShutDown`], service access after drain is the
/// same, and a connect after drain is refused at the transport.
#[test]
fn double_shutdown_and_use_after_drain_are_typed_errors() {
    let class = tiny_class();
    let cfg = ServeConfig::new(vec![class])
        .with_seed(24)
        .with_opts(net_opts());
    let mut server = NetServer::start(cfg).expect("startup");
    let addr = server.local_addr();

    assert!(server.service().is_ok(), "live service is reachable");
    server.shutdown().expect("first drain succeeds");
    assert!(matches!(
        server.shutdown(),
        Err(ServeError::AlreadyShutDown)
    ));
    assert!(matches!(server.service(), Err(ServeError::AlreadyShutDown)));
    assert!(
        NetClient::connect(addr).is_err(),
        "listener is closed after drain"
    );
}

/// A client that closes its write side with half a frame buffered gets
/// the dedicated truncation error, not a generic close.
#[test]
fn half_closed_partial_frame_is_a_truncation_error() {
    let class = tiny_class();
    let cfg = ServeConfig::new(vec![class])
        .with_seed(25)
        .with_opts(net_opts());
    let mut server = NetServer::start(cfg).expect("startup");
    let opts = net_opts();
    let verdict = chaos(
        server.local_addr(),
        ChaosMode::TruncatedWrite,
        7,
        class,
        &opts,
    )
    .expect("chaos");
    assert_eq!(verdict, "error(truncated) + close");
    let report = server.shutdown().expect("clean shutdown");
    assert_eq!(report.stats.truncated_closes, 1);
}
