//! Property tests pinning the PR 5 prover hot-path rewrites to their
//! slow-but-obviously-correct references: signed-digit batched-affine MSM
//! against naive double-and-add (and the retained unsigned-window
//! baseline), and the parallel SumCheck prover against the
//! single-threaded transcript, on seeded random inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zkphire_curve::{msm_naive, msm_unsigned_with_ops, msm_with_ops_threads, G1Affine};
use zkphire_field::Fr;
use zkphire_poly::expr::{konst, var, GateExpr};
use zkphire_poly::Mle;
use zkphire_sumcheck::{prove_with_threads, verify_with_oracle};
use zkphire_transcript::Transcript;

/// Random MSM instances mixing the regimes the prover actually sees:
/// dense uniform scalars, ~90%-sparse witness columns, 0/1 selector
/// columns, and repeated points (maximal bucket collisions).
fn msm_instance(n: usize, seed: u64) -> (Vec<G1Affine>, Vec<Fr>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let repeated = rng.gen_ratio(1, 4);
    let base = G1Affine::random(&mut rng);
    let points: Vec<G1Affine> = (0..n)
        .map(|_| {
            if repeated {
                base
            } else {
                G1Affine::random(&mut rng)
            }
        })
        .collect();
    let scalars: Vec<Fr> = (0..n)
        .map(|_| match rng.gen_range(0u8..4) {
            0 => Fr::random(&mut rng),
            1 => {
                if rng.gen_ratio(9, 10) {
                    Fr::ZERO
                } else {
                    Fr::random(&mut rng)
                }
            }
            2 => Fr::from_u64(rng.gen_range(0..2)),
            _ => Fr::from_u64(rng.gen_range(0..16)),
        })
        .collect();
    (points, scalars)
}

/// Random gate expressions over `num_vars` MLE slots (same shape as the
/// `property_suite` generator, kept local so the suites stay independent).
fn arb_expr(num_vars: usize) -> impl Strategy<Value = GateExpr> {
    let leaf = prop_oneof![(0..num_vars).prop_map(var), (-3i64..4).prop_map(konst)];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner, 1u32..4).prop_map(|(a, k)| a.pow(k)),
        ]
    })
}

fn random_mles(n: usize, mu: usize, seed: u64) -> Vec<Mle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Mle::from_fn(mu, |_| Fr::random(&mut rng)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Signed-digit batched-affine MSM equals naive double-and-add on
    /// random instances, for every worker-thread count, with bit-identical
    /// `MsmOps` across thread counts.
    #[test]
    fn signed_msm_matches_naive(n in 1usize..200, seed in 0u64..10_000) {
        let (points, scalars) = msm_instance(n, seed);
        let expected = msm_naive(&points, &scalars);
        let (r1, o1) = msm_with_ops_threads(&points, &scalars, 1);
        prop_assert_eq!(r1, expected);
        for threads in [2usize, 4, 7] {
            let (rt, ot) = msm_with_ops_threads(&points, &scalars, threads);
            prop_assert_eq!(rt, expected);
            prop_assert_eq!(ot, o1);
        }
    }

    /// The signed rewrite agrees with the retained unsigned-window
    /// baseline (the pre-PR-5 production path) on the same inputs.
    #[test]
    fn signed_msm_matches_unsigned_baseline(n in 1usize..200, seed in 0u64..10_000) {
        let (points, scalars) = msm_instance(n, seed);
        let (signed, _) = msm_with_ops_threads(&points, &scalars, 2);
        let (unsigned, _) = msm_unsigned_with_ops(&points, &scalars);
        prop_assert_eq!(signed, unsigned);
    }

    /// Parallel SumCheck provers produce proofs, challenges, and
    /// transcript states bit-identical to the single-threaded reference
    /// on random gates over random MLEs, and the proofs still verify.
    #[test]
    fn parallel_sumcheck_transcript_identical(e in arb_expr(3), seed in 0u64..1000) {
        let poly = e.expand();
        prop_assume!(poly.num_terms() > 0);
        let mu = 5;
        let mles = random_mles(poly.num_mles().max(1), mu, seed);

        let mut t1 = Transcript::new(b"hotpath");
        let reference = prove_with_threads(&poly, mles.clone(), &mut t1, 1);
        let probe1 = t1.challenge_fr(b"hotpath/final-state");

        for threads in [2usize, 4] {
            let mut tn = Transcript::new(b"hotpath");
            let out = prove_with_threads(&poly, mles.clone(), &mut tn, threads);
            prop_assert_eq!(&out.proof, &reference.proof);
            prop_assert_eq!(&out.challenges, &reference.challenges);
            // Equal post-prove challenges pin the full transcript state,
            // not just the proof fields.
            prop_assert_eq!(tn.challenge_fr(b"hotpath/final-state"), probe1);
        }

        let mut tv = Transcript::new(b"hotpath");
        prop_assert!(verify_with_oracle(&poly, &mles, &reference.proof, &mut tv).is_ok());
    }
}
