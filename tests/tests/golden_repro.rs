//! Golden determinism regression for the fleet-facing repro
//! experiments: `repro fleet`, `repro autoscale`, `repro faults`,
//! `repro obs` and `repro net` must be pure functions of their fixed
//! seeds (`net` keeps wall-clock latencies out of stdout for exactly
//! this reason — only chaos verdicts and integer counters are pinned). Two same-process runs are compared
//! byte for byte, and a small checked-in summary
//! (`tests/golden/repro_summary.txt`) pins the exact output across
//! commits so CI catches determinism drift — a changed RNG draw order,
//! a reordered event tie-break, a float reassociation — even when each
//! individual run is still self-consistent.
//!
//! The golden file was generated on Linux/glibc (the CI platform). The
//! simulator itself is IEEE-754-deterministic, but `f64::ln` (used for
//! exponential inter-arrival draws) goes through the platform's libm,
//! which may differ in the last ulp elsewhere; if the golden check
//! fails on another OS while `repro_runs_twice_byte_identical` passes,
//! suspect the platform before the simulator.

use zkphire_bench::experiments;

const EXPERIMENTS: [&str; 5] = ["fleet", "autoscale", "faults", "obs", "net"];

/// FNV-1a over the experiment's full text output.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The compact summary format the golden file stores: one hash line
/// per experiment plus every embedded trace-hash line verbatim.
fn summarize_outputs() -> String {
    let mut out = String::new();
    for name in EXPERIMENTS {
        let text = experiments::run(name).expect("registered experiment");
        out.push_str(&format!(
            "{name} lines={} fnv1a={:016x}\n",
            text.lines().count(),
            fnv1a(&text)
        ));
        for line in text.lines().filter(|l| l.starts_with("Trace hash")) {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn repro_runs_twice_byte_identical() {
    for name in EXPERIMENTS {
        let a = experiments::run(name).expect("registered experiment");
        let b = experiments::run(name).expect("registered experiment");
        assert_eq!(a, b, "`repro {name}` diverged between two runs");
        assert!(!a.is_empty());
    }
}

#[test]
fn repro_outputs_match_checked_in_golden() {
    let golden = include_str!("../golden/repro_summary.txt");
    let produced = summarize_outputs();
    assert_eq!(
        produced, golden,
        "repro output drifted from tests/golden/repro_summary.txt.\n\
         If the change is intentional (new experiment content, model \n\
         change), regenerate the golden file by writing the left-hand \n\
         string above into it. If `repro_runs_twice_byte_identical` \n\
         also fails, a determinism regression slipped into the fleet \n\
         DES or its cost model; if it passes and you are not on \n\
         Linux/glibc, this is likely a platform libm difference in \n\
         f64::ln (see module docs)."
    );
}
