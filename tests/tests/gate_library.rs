//! Integration: every Table I gate runs through the full functional
//! SumCheck stack (expression expansion → MLE binding → multithreaded
//! prover → verifier), with protocol scalars bound where present.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_field::Fr;
use zkphire_poly::{sparsity, table1_gates};
use zkphire_sumcheck::{prove, prove_instrumented, verify_with_oracle};
use zkphire_transcript::Transcript;

#[test]
fn every_table1_gate_proves_and_verifies() {
    let mu = 6;
    for gate in table1_gates() {
        let mut rng = StdRng::seed_from_u64(1000 + gate.id as u64);
        let scalars: Vec<Fr> = (0..gate.poly.num_scalars())
            .map(|_| Fr::random(&mut rng))
            .collect();
        let poly = gate.poly.specialize(&scalars);
        let mles = sparsity::random_binding(&mut rng, &gate.mle_kinds, mu);

        let mut tp = Transcript::new(b"gate-library");
        let out = prove(&poly, mles.clone(), &mut tp);
        let mut tv = Transcript::new(b"gate-library");
        let verified = verify_with_oracle(&poly, &mles, &out.proof, &mut tv)
            .unwrap_or_else(|e| panic!("gate {} ({}): {e}", gate.id, gate.name));
        assert_eq!(verified.challenges.len(), mu, "gate {}", gate.id);

        // The claim must equal the independent hypercube sum.
        assert_eq!(
            out.proof.claimed_sum,
            poly.sum_over_hypercube(&mles),
            "gate {} claim",
            gate.id
        );
    }
}

#[test]
fn every_gate_matches_analytical_op_counts() {
    // The op-count oracle shared with the hardware model must hold for
    // every gate in the library, not just hand-picked ones.
    let mu = 4;
    for gate in table1_gates() {
        let mut rng = StdRng::seed_from_u64(2000 + gate.id as u64);
        let scalars: Vec<Fr> = (0..gate.poly.num_scalars())
            .map(|_| Fr::random(&mut rng))
            .collect();
        let poly = gate.poly.specialize(&scalars);
        let mles = sparsity::random_binding(&mut rng, &gate.mle_kinds, mu);
        let mut t = Transcript::new(b"ops");
        let (_, measured) = prove_instrumented(&poly, mles, &mut t);
        let predicted = zkphire_sumcheck::count_ops(&poly, mu);
        assert_eq!(measured, predicted, "gate {} ({})", gate.id, gate.name);
    }
}

#[test]
fn proofs_are_size_logarithmic() {
    // Succinctness: doubling the table size adds one round, not 2x bytes.
    let gate = zkphire_poly::table1_gate(20);
    let sizes: Vec<usize> = [5usize, 8]
        .iter()
        .map(|&mu| {
            let mut rng = StdRng::seed_from_u64(3000 + mu as u64);
            let mles = sparsity::random_binding(&mut rng, &gate.mle_kinds, mu);
            let mut t = Transcript::new(b"size");
            prove(&gate.poly, mles, &mut t).proof.size_bytes()
        })
        .collect();
    let per_round = (sizes[1] - sizes[0]) / 3;
    assert!(per_round < 1024, "per-round growth {per_round} bytes");
    assert!(sizes[1] < 2 * sizes[0], "not size-logarithmic: {sizes:?}");
}
