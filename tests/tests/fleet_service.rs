//! Integration tests for the proving-service stack: the fleet DES
//! driven by the core cost model, checked for determinism, metric
//! correctness and policy invariants.

use std::collections::HashMap;

use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_fleet::{
    quantile, quantile_sorted, simulate, simulate_poisson_fleet, FleetConfig, PoissonSource,
    PolicyKind, RequestClass, SimReport, SplitMix64, TraceSource, WorkloadMix,
};

fn service_run(policy: PolicyKind, seed: u64, chips: usize, rate: f64) -> SimReport {
    let mut cost = CostModel::exemplar();
    let mix = WorkloadMix::tables_vi_vii(20);
    let mut source = PoissonSource::new(rate, 3_000.0, mix, seed);
    let cfg = FleetConfig::new(chips).with_policy(policy);
    simulate(&cfg, &mut source, &mut cost).expect("valid config")
}

#[test]
fn same_seed_identical_event_trace() {
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::SizeClass,
        PolicyKind::EarliestDeadline,
    ] {
        let a = service_run(policy, 42, 3, 150.0);
        let b = service_run(policy, 42, 3, 150.0);
        assert_eq!(a.trace, b.trace, "{policy:?} trace diverged");
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish_ms, y.finish_ms);
            assert_eq!(x.chip, y.chip);
        }
        let c = service_run(policy, 43, 3, 150.0);
        assert_ne!(a.trace_hash, c.trace_hash, "{policy:?} seed-insensitive");
    }
}

#[test]
fn quantiles_match_naive_definition() {
    // Exact nearest-rank: smallest element with cumulative freq >= q.
    let mut rng = SplitMix64::new(99);
    let values: Vec<f64> = (0..1013).map(|_| rng.next_f64() * 500.0).collect();
    let naive = |q: f64| {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    };
    for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
        assert_eq!(quantile(&values, q), naive(q), "q = {q}");
    }
    // Sorted-input entry point agrees too.
    let mut sorted = values.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(quantile_sorted(&sorted, 0.99), naive(0.99));
}

#[test]
fn no_request_lost_or_double_served() {
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::SizeClass,
        PolicyKind::EarliestDeadline,
    ] {
        let r = service_run(policy, 7, 2, 250.0);
        let s = &r.summary;
        // Conservation: every arrival is either served or rejected.
        let admitted: Vec<u64> = r
            .trace
            .iter()
            .filter_map(|e| match e {
                zkphire_fleet::TraceEntry::Admitted { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(
            admitted.len() as u64,
            s.completed,
            "{policy:?}: admitted != completed"
        );
        // Each id served exactly once.
        let mut seen = HashMap::new();
        for rec in &r.records {
            *seen.entry(rec.id).or_insert(0u32) += 1;
        }
        assert!(seen.values().all(|&n| n == 1), "{policy:?}: double service");
        let mut served: Vec<u64> = seen.into_keys().collect();
        served.sort_unstable();
        let mut expected = admitted.clone();
        expected.sort_unstable();
        assert_eq!(served, expected, "{policy:?}: served set != admitted set");
        // Per-record sanity: causality and batch bounds.
        for rec in &r.records {
            assert!(rec.start_ms >= rec.arrival_ms);
            assert!(rec.finish_ms > rec.start_ms);
            assert!(rec.batch_size >= 1 && rec.batch_size <= 8);
            assert!(rec.chip < 2);
        }
    }
}

#[test]
fn fifo_order_preserved_within_size_class() {
    // Under both FIFO and size-class policies, two same-class requests
    // must start service in arrival order.
    for policy in [PolicyKind::Fifo, PolicyKind::SizeClass] {
        let r = service_run(policy, 13, 2, 300.0);
        let mut last_start: HashMap<RequestClass, (f64, u64)> = HashMap::new();
        let mut by_id: Vec<_> = r.records.clone();
        by_id.sort_by_key(|rec| rec.id);
        for rec in &by_id {
            if let Some(&(prev_start, prev_id)) = last_start.get(&rec.class) {
                assert!(
                    rec.start_ms >= prev_start,
                    "{policy:?}: id {} (class {}) started {} before earlier id {} at {}",
                    rec.id,
                    rec.class,
                    rec.start_ms,
                    prev_id,
                    prev_start
                );
            }
            last_start.insert(rec.class, (rec.start_ms, rec.id));
        }
    }
}

#[test]
fn end_to_end_utilization_in_unit_interval() {
    let r = simulate_poisson_fleet(3, 200.0, 2_000.0, PolicyKind::SizeClass, 5);
    let s = &r.summary;
    assert!(s.completed > 100, "completed {}", s.completed);
    assert!(
        s.mean_utilization > 0.0 && s.mean_utilization <= 1.0,
        "utilization {}",
        s.mean_utilization
    );
    for (i, u) in s.per_chip_utilization.iter().enumerate() {
        assert!(*u > 0.0 && *u <= 1.0 + 1e-9, "chip {i} utilization {u}");
    }
    assert!(s.throughput_rps > 0.0);
    assert!(s.p50_latency_ms <= s.p95_latency_ms);
    assert!(s.p95_latency_ms <= s.p99_latency_ms);
    assert!(s.p99_latency_ms <= s.max_latency_ms);
}

#[test]
fn quantile_edge_cases() {
    // Single element: every valid q returns it.
    for q in [1e-9, 0.5, 0.99, 1.0] {
        assert_eq!(quantile_sorted(&[42.0], q), 42.0);
        assert_eq!(quantile(&[42.0], q), 42.0);
    }
    // q = 1 is the max; q just above 0 is the min.
    let s = [1.0, 2.0, 3.0, 4.0];
    assert_eq!(quantile_sorted(&s, 1.0), 4.0);
    assert_eq!(quantile_sorted(&s, 1e-12), 1.0);
    // NaN-free guarantee: finite input yields finite output.
    let mut rng = SplitMix64::new(3);
    let vals: Vec<f64> = (0..257).map(|_| rng.next_f64() * 1e6).collect();
    for q in [0.001, 0.5, 0.95, 0.99, 1.0] {
        assert!(quantile(&vals, q).is_finite());
    }
}

#[test]
#[should_panic(expected = "empty")]
fn quantile_empty_sample_panics() {
    quantile_sorted(&[], 0.5);
}

#[test]
#[should_panic(expected = "outside")]
fn quantile_q_zero_panics() {
    quantile(&[1.0, 2.0], 0.0);
}

#[test]
#[should_panic(expected = "outside")]
fn quantile_q_above_one_panics() {
    quantile(&[1.0, 2.0], 1.0000001);
}

#[test]
fn zero_completion_run_has_finite_summary() {
    // A source with no arrivals: the summary must be all zeros, never
    // NaN, and quantiles must not be consulted on the empty sample.
    let mut cost = CostModel::exemplar();
    let mut source = TraceSource::new(Vec::new());
    let r = simulate(&FleetConfig::new(2), &mut source, &mut cost).expect("valid config");
    let s = &r.summary;
    assert_eq!(s.completed, 0);
    assert_eq!(s.rejected, 0);
    assert!(r.records.is_empty() && r.trace.is_empty());
    for v in [
        s.throughput_rps,
        s.mean_latency_ms,
        s.p50_latency_ms,
        s.p95_latency_ms,
        s.p99_latency_ms,
        s.max_latency_ms,
        s.mean_utilization,
        s.mean_queue_depth,
        s.mean_batch_size,
        s.deadline_miss_rate,
        s.chip_seconds,
        s.mean_chips,
        s.jain_fairness,
    ] {
        assert!(v.is_finite(), "non-finite summary field {v}");
        assert!(v >= 0.0);
    }
    assert!(s.per_tenant.is_empty());
    assert_eq!(s.jain_fairness, 1.0);
}

#[test]
fn all_rejected_run_has_finite_summary() {
    // Capacity 0 sheds everything: completions are zero but rejections
    // and per-tenant slices must still be populated and NaN-free.
    let mut cost = CostModel::exemplar();
    let class = RequestClass::new(Gate::Jellyfish, 16);
    let mut source = TraceSource::with_tenants(vec![(0.0, class, 1), (1.0, class, 2)]);
    let cfg = FleetConfig::new(1).with_queue_capacity(0);
    let r = simulate(&cfg, &mut source, &mut cost).expect("valid config");
    assert_eq!(r.summary.completed, 0);
    assert_eq!(r.summary.rejected, 2);
    assert_eq!(r.summary.per_tenant.len(), 2);
    for t in &r.summary.per_tenant {
        assert_eq!(t.completed, 0);
        assert_eq!(t.rejected, 1);
        assert!(t.p99_latency_ms == 0.0 && !t.mean_latency_ms.is_nan());
    }
    assert!(r.summary.jain_fairness == 1.0);
}

#[test]
fn trace_driven_replay_is_exact() {
    // A hand-built trace through a 1-chip FIFO fleet: service times are
    // the memoized protocol costs, so finish times are predictable.
    let class = RequestClass::new(Gate::Jellyfish, 16);
    let mut cost = CostModel::exemplar();
    let per_proof = cost.proof_ms(Gate::Jellyfish, 16);
    let overhead = 1.0;
    let entries = vec![(0.0, class), (1.0, class)];
    let mut source = TraceSource::new(entries);
    let cfg = FleetConfig::new(1)
        .with_policy(PolicyKind::Fifo)
        .with_max_batch(1);
    let r = simulate(&cfg, &mut source, &mut cost).expect("valid config");
    assert_eq!(r.records.len(), 2);
    let first = &r.records[0];
    let second = &r.records[1];
    assert!((first.finish_ms - (overhead + per_proof)).abs() < 1e-9);
    // Second waits for the first, then pays its own overhead + proof.
    assert!((second.finish_ms - (2.0 * (overhead + per_proof))).abs() < 1e-9);
}
