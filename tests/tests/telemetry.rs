//! Telemetry determinism and well-formedness suite.
//!
//! Three guarantees pinned here, matching docs/OBSERVABILITY.md:
//!
//! 1. The fleet's sim-time timeline is a pure function of the seed:
//!    its JSONL and Chrome exports are byte-identical no matter how
//!    many host threads are running the simulation (or anything else)
//!    concurrently. Wall-clock scheduling must never leak in.
//! 2. The prover's wall-clock span forest is well-formed: every span
//!    nests inside its parent, `prove` is the single root, and the
//!    depth-1 phases partition it.
//! 3. With recording compiled in but switched off at runtime, the
//!    hooks observe nothing — a drained profile is empty. (The
//!    compile-out guarantee — lib builds without the `record` feature
//!    carry zero telemetry symbols — is checked by the CI build-matrix
//!    step, not a runtime test.)

use std::sync::MutexGuard;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_fleet::{
    simulate, BrownOutConfig, ChipOutage, FaultConfig, FleetConfig, PoissonSource, RequestClass,
    RetryPolicy, WorkloadMix,
};
use zkphire_hyperplonk::{prove_with_config, setup, Circuit, GateSystem, ProverConfig};
use zkphire_telemetry as tele;
use zkphire_transcript::Transcript;

/// The wall-clock profiler is process-global; tests in this binary run
/// on multiple threads, so profiler sessions are serialized.
fn tele_guard() -> MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small telemetered fault scenario: 3 chips, one outage, 2 s
/// horizon. Deliberately smaller than `repro obs` — this test runs the
/// scenario several times concurrently under the dev profile.
fn traced_fleet_exports(seed: u64) -> (String, String) {
    let mut cost = CostModel::exemplar();
    let per = cost.proof_ms(Gate::Jellyfish, 18);
    let rate = 0.8 * 3.0 * 1000.0 / per;
    let workload = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
    let cfg = FleetConfig::new(3)
        .with_faults(FaultConfig::scripted(vec![ChipOutage::new(
            1, 500.0, 600.0,
        )]))
        .with_retry(RetryPolicy::new(3))
        .with_brown_out(BrownOutConfig::new(1.0, 6))
        .with_telemetry();
    let mut source = PoissonSource::new(rate, 2_000.0, workload, seed);
    let report = simulate(&cfg, &mut source, &mut cost).expect("valid config");
    let timeline = report.timeline.expect("with_telemetry attaches a timeline");
    (timeline.to_jsonl(), timeline.to_chrome_trace())
}

/// Same seed => byte-identical sim-time trace, no matter the host
/// thread count. The baseline run happens on the test thread; the
/// rivals run on freshly spawned threads, all at once, while the test
/// thread runs the scenario a second time — maximal wall-clock
/// interleaving, zero effect on simulated time.
#[test]
fn fleet_trace_is_byte_identical_under_concurrency() {
    const SEED: u64 = 0x7e1e;
    let (base_jsonl, base_chrome) = traced_fleet_exports(SEED);

    let rivals: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(move || traced_fleet_exports(SEED)))
        .collect();
    let (again_jsonl, again_chrome) = traced_fleet_exports(SEED);
    assert_eq!(base_jsonl, again_jsonl, "same-thread rerun diverged");
    assert_eq!(base_chrome, again_chrome);

    for rival in rivals {
        let (jsonl, chrome) = rival.join().expect("rival run must not panic");
        assert_eq!(base_jsonl, jsonl, "spawned-thread run diverged");
        assert_eq!(base_chrome, chrome);
    }

    // Different seed must actually change the trace — guards against
    // the exports ignoring their input.
    let (other_jsonl, _) = traced_fleet_exports(SEED + 1);
    assert_ne!(base_jsonl, other_jsonl, "seed does not reach the trace");
}

/// The prover's span forest nests correctly and `prove` is its only
/// root; the depth-1 phases cover the root to within 1%.
#[test]
fn prover_span_forest_is_well_formed() {
    let mut rng = StdRng::seed_from_u64(0x0b5eed);
    let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, 8, 0.5, &mut rng);
    let (pk, _vk) = setup(circuit, &mut rng);

    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(true);
    let _proof = prove_with_config(
        &pk,
        &witness,
        &mut Transcript::new(b"tests/telemetry"),
        ProverConfig { threads: 1 },
    );
    tele::set_enabled(false);
    let profile = tele::drain();
    drop(guard);

    profile
        .check_well_formed()
        .expect("span forest well-formed");
    assert_eq!(
        profile.span_count("prove"),
        1,
        "prove must be the single root"
    );

    let phases = profile.names_at_depth(1);
    assert!(!phases.is_empty(), "prove must expose depth-1 phases");
    let phase_ns: u64 = phases.iter().map(|n| profile.total_ns(n)).sum();
    let root_ns = profile.total_ns("prove");
    assert!(
        (phase_ns as f64 - root_ns as f64).abs() <= 0.01 * root_ns as f64,
        "depth-1 phases ({phase_ns} ns) must cover the prove span ({root_ns} ns) within 1%"
    );
}

/// Runtime kill switch: hooks compiled in, recording off => a drained
/// profile is empty, and the hooks cost no bookkeeping.
#[test]
fn runtime_disabled_records_nothing() {
    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(false);
    {
        let _outer = tele::span("dead/outer");
        let _inner = tele::span("dead/inner");
        tele::counter_add("dead/counter", 41);
        tele::hist_record("dead/hist", 7);
    }
    let profile = tele::drain();
    drop(guard);

    assert!(profile.spans.is_empty(), "disabled spans must not record");
    assert_eq!(profile.counter("dead/counter"), 0);
    assert_eq!(profile.span_count("dead/outer"), 0);
    assert!(
        profile.names_at_depth(0).is_empty(),
        "no roots may exist after a disabled session"
    );
}
