//! Telemetry determinism and well-formedness suite.
//!
//! Three guarantees pinned here, matching docs/OBSERVABILITY.md:
//!
//! 1. The fleet's sim-time timeline is a pure function of the seed:
//!    its JSONL and Chrome exports are byte-identical no matter how
//!    many host threads are running the simulation (or anything else)
//!    concurrently. Wall-clock scheduling must never leak in.
//! 2. The prover's wall-clock span forest is well-formed: every span
//!    nests inside its parent, `prove` is the single root, and the
//!    depth-1 phases partition it.
//! 3. With recording compiled in but switched off at runtime, the
//!    hooks observe nothing — a drained profile is empty. (The
//!    compile-out guarantee — lib builds without the `record` feature
//!    carry zero telemetry symbols — is checked by the CI build-matrix
//!    step, not a runtime test.)
//! 4. Trace exports degrade gracefully at the edges: empty profiles
//!    and timelines export valid (if boring) documents, lifecycle
//!    phases still open at export are drawn to the horizon and flagged
//!    rather than dropped, and a span forest recorded across a real
//!    multi-threaded worker pool survives the drain — including the
//!    wall timeline reconciling exactly with the service's own
//!    summary.

use std::sync::MutexGuard;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_fleet::{
    simulate, BrownOutConfig, ChipOutage, FaultConfig, FleetConfig, PoissonSource, RequestClass,
    RetryPolicy, WorkloadMix,
};
use zkphire_hyperplonk::{prove_with_config, setup, Circuit, GateSystem, ProverConfig};
use zkphire_telemetry as tele;
use zkphire_transcript::Transcript;

/// The wall-clock profiler is process-global; tests in this binary run
/// on multiple threads, so profiler sessions are serialized.
fn tele_guard() -> MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small telemetered fault scenario: 3 chips, one outage, 2 s
/// horizon. Deliberately smaller than `repro obs` — this test runs the
/// scenario several times concurrently under the dev profile.
fn traced_fleet_exports(seed: u64) -> (String, String) {
    let mut cost = CostModel::exemplar();
    let per = cost.proof_ms(Gate::Jellyfish, 18);
    let rate = 0.8 * 3.0 * 1000.0 / per;
    let workload = WorkloadMix::single(RequestClass::new(Gate::Jellyfish, 18));
    let cfg = FleetConfig::new(3)
        .with_faults(FaultConfig::scripted(vec![ChipOutage::new(
            1, 500.0, 600.0,
        )]))
        .with_retry(RetryPolicy::new(3))
        .with_brown_out(BrownOutConfig::new(1.0, 6))
        .with_telemetry();
    let mut source = PoissonSource::new(rate, 2_000.0, workload, seed);
    let report = simulate(&cfg, &mut source, &mut cost).expect("valid config");
    let timeline = report.timeline.expect("with_telemetry attaches a timeline");
    (timeline.to_jsonl(), timeline.to_chrome_trace())
}

/// Same seed => byte-identical sim-time trace, no matter the host
/// thread count. The baseline run happens on the test thread; the
/// rivals run on freshly spawned threads, all at once, while the test
/// thread runs the scenario a second time — maximal wall-clock
/// interleaving, zero effect on simulated time.
#[test]
fn fleet_trace_is_byte_identical_under_concurrency() {
    const SEED: u64 = 0x7e1e;
    let (base_jsonl, base_chrome) = traced_fleet_exports(SEED);

    let rivals: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(move || traced_fleet_exports(SEED)))
        .collect();
    let (again_jsonl, again_chrome) = traced_fleet_exports(SEED);
    assert_eq!(base_jsonl, again_jsonl, "same-thread rerun diverged");
    assert_eq!(base_chrome, again_chrome);

    for rival in rivals {
        let (jsonl, chrome) = rival.join().expect("rival run must not panic");
        assert_eq!(base_jsonl, jsonl, "spawned-thread run diverged");
        assert_eq!(base_chrome, chrome);
    }

    // Different seed must actually change the trace — guards against
    // the exports ignoring their input.
    let (other_jsonl, _) = traced_fleet_exports(SEED + 1);
    assert_ne!(base_jsonl, other_jsonl, "seed does not reach the trace");
}

/// The prover's span forest nests correctly and `prove` is its only
/// root; the depth-1 phases cover the root to within 1%.
#[test]
fn prover_span_forest_is_well_formed() {
    let mut rng = StdRng::seed_from_u64(0x0b5eed);
    let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, 8, 0.5, &mut rng);
    let (pk, _vk) = setup(circuit, &mut rng);

    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(true);
    let _proof = prove_with_config(
        &pk,
        &witness,
        &mut Transcript::new(b"tests/telemetry"),
        ProverConfig { threads: 1 },
    );
    tele::set_enabled(false);
    let profile = tele::drain();
    drop(guard);

    profile
        .check_well_formed()
        .expect("span forest well-formed");
    assert_eq!(
        profile.span_count("prove"),
        1,
        "prove must be the single root"
    );

    let phases = profile.names_at_depth(1);
    assert!(!phases.is_empty(), "prove must expose depth-1 phases");
    let phase_ns: u64 = phases.iter().map(|n| profile.total_ns(n)).sum();
    let root_ns = profile.total_ns("prove");
    assert!(
        (phase_ns as f64 - root_ns as f64).abs() <= 0.01 * root_ns as f64,
        "depth-1 phases ({phase_ns} ns) must cover the prove span ({root_ns} ns) within 1%"
    );
}

/// Runtime kill switch: hooks compiled in, recording off => a drained
/// profile is empty, and the hooks cost no bookkeeping.
#[test]
fn runtime_disabled_records_nothing() {
    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(false);
    {
        let _outer = tele::span("dead/outer");
        let _inner = tele::span("dead/inner");
        tele::counter_add("dead/counter", 41);
        tele::hist_record("dead/hist", 7);
    }
    let profile = tele::drain();
    drop(guard);

    assert!(profile.spans.is_empty(), "disabled spans must not record");
    assert_eq!(profile.counter("dead/counter"), 0);
    assert_eq!(profile.span_count("dead/outer"), 0);
    assert!(
        profile.names_at_depth(0).is_empty(),
        "no roots may exist after a disabled session"
    );
}

/// Exports of nothing are still valid documents: an empty drained
/// profile, a finalized timeline that saw no work, and a wall timeline
/// built from zero events all render loadable Chrome traces and
/// well-formed JSONL instead of panicking or emitting fragments.
#[test]
fn empty_exports_are_valid_documents() {
    let guard = tele_guard();
    tele::reset();
    let profile = tele::drain();
    drop(guard);
    let chrome = tele::profile_to_chrome(&profile);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with('}'), "complete JSON doc");
    assert!(tele::profile_to_jsonl(&profile)
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));

    let mut sim = tele::SimTimeline::new(2);
    sim.finalize(0.0);
    let chrome = sim.to_chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with('}'));
    for line in sim.to_jsonl().lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }

    let wall = tele::WallTimeline::from_events(&[]);
    assert!(wall.is_empty());
    assert_eq!(wall.num_workers(), 0);
    let chrome = wall.to_chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with('}'));
    let jsonl = wall.to_jsonl();
    assert!(
        jsonl.starts_with("{\"kind\":\"meta\""),
        "even an empty wall timeline leads with its meta line: {jsonl}"
    );
}

/// A request whose lifecycle is still in flight when the timeline is
/// exported — admitted and proving, never finished — must appear in
/// the Chrome trace truncated at the horizon and flagged
/// `open_at_export`, not be silently dropped or left as an unbalanced
/// async pair.
#[test]
fn open_lifecycle_phases_survive_export() {
    use tele::{WallEvent, WallEventKind};
    let ev = |t_ns: u64, seq: u64, kind: WallEventKind, id: u64| WallEvent {
        t_ns,
        seq,
        tid: 0,
        kind,
        id,
        tenant: 0,
        arg: 0,
        a: 0.0,
        b: 0.0,
    };
    let wall = tele::WallTimeline::from_events(&[
        ev(10, 0, WallEventKind::Admitted, 7),
        ev(20, 1, WallEventKind::Dispatched, 7),
        ev(30, 2, WallEventKind::ProveBegin, 7),
        // horizon moves past the open prove phase
        ev(90, 3, WallEventKind::Admitted, 8),
    ]);
    let chrome = wall.to_chrome_trace();
    assert!(chrome.contains("\"open_at_export\":true"), "{chrome}");
    // Balanced async pairs: every "b" has its "e", even the open ones.
    assert_eq!(
        chrome.matches("\"ph\":\"b\"").count(),
        chrome.matches("\"ph\":\"e\"").count(),
        "{chrome}"
    );
}

/// The full cross-thread round trip on a real worker pool: a live
/// proving service (dispatcher thread + 2 workers + this thread) runs
/// a few requests with recording on. The drained profile's span forest
/// must be well-formed across all those threads, and the wall timeline
/// rebuilt from its events must reconcile *exactly* with the
/// `ServeReport` the service computed independently.
#[test]
fn cross_thread_span_forest_and_wall_reconcile() {
    use zkphire_serve::{reconcile_wall, ProvingService, ServeConfig, ServeOpts};

    let class = RequestClass::new(Gate::Vanilla, 4);
    let guard = tele_guard();
    tele::reset();
    tele::set_enabled(true);
    let cfg = ServeConfig::new(vec![class]).with_opts(
        ServeOpts::default()
            .with_workers(2)
            .with_prover_threads(1)
            .with_max_batch(2),
    );
    let service = ProvingService::start(cfg).expect("startup");
    for _ in 0..6 {
        service.submit(class, 0).expect("admitted");
    }
    let report = service.shutdown().expect("clean drain");
    tele::set_enabled(false);
    let profile = tele::drain();
    drop(guard);

    assert_eq!(report.summary.completed, 6);
    profile
        .check_well_formed()
        .expect("cross-thread span forest well-formed");
    assert!(
        profile.span_count("prove") >= 1,
        "worker threads contribute prover spans"
    );

    let wall = tele::WallTimeline::from_events(&profile.wall_events);
    assert!(!wall.is_empty(), "lifecycle events recorded");
    assert_eq!(wall.outcome_count(tele::Outcome::Completed), 6);
    reconcile_wall(&wall, &report.summary).expect("timeline and summary describe the same run");

    // The exports hold up on real multi-threaded data too.
    let chrome = wall.to_chrome_trace();
    assert!(chrome.contains("\"ph\":\"b\"") && chrome.contains("\"ph\":\"e\""));
    assert!(chrome.contains("\"worker busy\"") || chrome.contains("worker"));
    assert!(tele::profile_to_chrome(&profile).starts_with("{\"traceEvents\":["));
}
