//! Runnable examples for the zkPHIRE reproduction.
//!
//! * `quickstart` — prove + verify a HyperPlonk circuit end to end;
//! * `custom_gates` — program a Halo2-style high-degree gate, prove its
//!   SumCheck functionally and project it on the accelerator model;
//! * `rollup` — Vanilla vs Jellyfish arithmetization at rollup scale;
//! * `design_explorer` — a miniature Table III design-space sweep.
//!
//! Run with `cargo run --release -p zkphire-examples --bin <name>`.
