//! `fleet_sim` — operate a zkPHIRE proving service in simulation.
//!
//! Walks one scenario end to end: steady Poisson traffic, then a bursty
//! ON/OFF front, on fleets of growing size, and finally asks the DSE
//! layer how many chips a 50 ms p99 SLO actually needs.
//!
//! Run with `cargo run --release -p zkphire-examples --bin fleet_sim`.

use zkphire_core::costdb::CostModel;
use zkphire_core::system::ZkphireConfig;
use zkphire_dse::{size_fleet, FleetSlo};
use zkphire_fleet::{simulate, FleetConfig, OnOffSource, PoissonSource, PolicyKind, WorkloadMix};

fn main() {
    let horizon_ms = 5_000.0;
    let seed = 2026;
    let mix = WorkloadMix::table_vii_jellyfish(21);
    println!("zkPHIRE proving-service simulator");
    println!(
        "traffic classes: {}",
        mix.classes()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // One memoized cost model for every simulation below.
    let mut cost = CostModel::exemplar();

    // 1. Steady traffic, growing fleet.
    println!("\n— Poisson 600 req/s, size-class batching —");
    for chips in [1usize, 2, 4] {
        let mut source = PoissonSource::new(600.0, horizon_ms, mix.clone(), seed);
        let cfg = FleetConfig::new(chips);
        let s = simulate(&cfg, &mut source, &mut cost).summary;
        println!(
            "{chips} chip(s): {:7.1} proofs/s  util {:.2}  p50 {:8.2} ms  p99 {:8.2} ms",
            s.throughput_rps, s.mean_utilization, s.p50_latency_ms, s.p99_latency_ms
        );
    }

    // 2. The same average load, but bursty: ON 1/3 of the time at 3×
    //    the rate. Tail latency degrades even though throughput holds.
    println!("\n— ON/OFF bursts, same 600 req/s average, 2 chips —");
    let mut steady = PoissonSource::new(600.0, horizon_ms, mix.clone(), seed);
    let smooth = simulate(&FleetConfig::new(2), &mut steady, &mut cost).summary;
    let mut bursty_src = OnOffSource::new(1800.0, 400.0, 800.0, horizon_ms, mix.clone(), seed);
    let bursty = simulate(&FleetConfig::new(2), &mut bursty_src, &mut cost).summary;
    println!(
        "steady: p99 {:8.2} ms   bursty: p99 {:8.2} ms  ({:.1}x)",
        smooth.p99_latency_ms,
        bursty.p99_latency_ms,
        bursty.p99_latency_ms / smooth.p99_latency_ms
    );

    // 3. SLO-driven sizing via the DSE layer.
    println!("\n— fleet sizing: p99 <= 50 ms on the exemplar chip —");
    let chip = ZkphireConfig::exemplar();
    for rate in [200.0, 600.0, 1200.0] {
        let slo = FleetSlo {
            arrival_rps: rate,
            p99_ms: 50.0,
            queue_capacity: None,
            max_reject_fraction: 0.0,
            horizon_ms,
            seed,
        };
        match size_fleet(&chip, &mix, PolicyKind::SizeClass, &slo, 64) {
            Some(sizing) => println!(
                "{rate:6.0} req/s -> {:2} chip(s), p99 {:6.2} ms, {:6.0} mm2, {:5.0} W",
                sizing.chips,
                sizing.summary.p99_latency_ms,
                sizing.cost.total_area_mm2,
                sizing.cost.total_power_w
            ),
            None => println!("{rate:6.0} req/s -> infeasible within 64 chips"),
        }
    }
}
