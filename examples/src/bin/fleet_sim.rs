//! `fleet_sim` — operate a zkPHIRE proving service in simulation.
//!
//! Walks one scenario end to end: steady Poisson traffic, then a bursty
//! ON/OFF front, on fleets of growing size; asks the DSE layer how many
//! chips a 50 ms p99 SLO actually needs; then lets a reactive
//! autoscaler ride the bursts and shows what weighted-fair batching
//! buys a light tenant sharing the fleet with a flooder.
//!
//! Run with `cargo run --release -p zkphire-examples --bin fleet_sim`.
//! Pass `--trace out.json` to also dump the chip-utilization timeline
//! of the failure scenario (step 6) as a Chrome trace-event file —
//! load it in Perfetto and the 1-of-4-chip outage is visible as a gap
//! in chip 0's track.

use zkphire_core::costdb::CostModel;
use zkphire_core::system::ZkphireConfig;
use zkphire_dse::{compare_provisioning, size_fleet, BurstScenario, FleetSlo};
use zkphire_fleet::{
    simulate, BrownOutConfig, ChipOutage, FaultConfig, FleetConfig, OnOffSource, PoissonSource,
    PolicyKind, RetryPolicy, ScaleKind, TenantMix, TenantProfile, WorkloadMix,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let horizon_ms = 5_000.0;
    let seed = 2026;
    let mix = WorkloadMix::table_vii_jellyfish(21);
    println!("zkPHIRE proving-service simulator");
    println!(
        "traffic classes: {}",
        mix.classes()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // One memoized cost model for every simulation below.
    let mut cost = CostModel::exemplar();

    // 1. Steady traffic, growing fleet.
    println!("\n— Poisson 600 req/s, size-class batching —");
    for chips in [1usize, 2, 4] {
        let mut source = PoissonSource::new(600.0, horizon_ms, mix.clone(), seed);
        let cfg = FleetConfig::new(chips);
        let s = simulate(&cfg, &mut source, &mut cost)
            .expect("valid config")
            .summary;
        println!(
            "{chips} chip(s): {:7.1} proofs/s  util {:.2}  p50 {:8.2} ms  p99 {:8.2} ms",
            s.throughput_rps, s.mean_utilization, s.p50_latency_ms, s.p99_latency_ms
        );
    }

    // 2. The same average load, but bursty: ON 1/3 of the time at 3×
    //    the rate. Tail latency degrades even though throughput holds.
    println!("\n— ON/OFF bursts, same 600 req/s average, 2 chips —");
    let mut steady = PoissonSource::new(600.0, horizon_ms, mix.clone(), seed);
    let smooth = simulate(&FleetConfig::new(2), &mut steady, &mut cost)
        .expect("valid config")
        .summary;
    let mut bursty_src = OnOffSource::new(1800.0, 400.0, 800.0, horizon_ms, mix.clone(), seed);
    let bursty = simulate(&FleetConfig::new(2), &mut bursty_src, &mut cost)
        .expect("valid config")
        .summary;
    println!(
        "steady: p99 {:8.2} ms   bursty: p99 {:8.2} ms  ({:.1}x)",
        smooth.p99_latency_ms,
        bursty.p99_latency_ms,
        bursty.p99_latency_ms / smooth.p99_latency_ms
    );

    // 3. SLO-driven sizing via the DSE layer.
    println!("\n— fleet sizing: p99 <= 50 ms on the exemplar chip —");
    let chip = ZkphireConfig::exemplar();
    for rate in [200.0, 600.0, 1200.0] {
        let slo = FleetSlo {
            arrival_rps: rate,
            p99_ms: 50.0,
            queue_capacity: None,
            max_reject_fraction: 0.0,
            horizon_ms,
            seed,
        };
        match size_fleet(&chip, &mix, PolicyKind::SizeClass, &slo, 64) {
            Some(sizing) => println!(
                "{rate:6.0} req/s -> {:2} chip(s), p99 {:6.2} ms, {:6.0} mm2, {:5.0} W",
                sizing.chips,
                sizing.summary.p99_latency_ms,
                sizing.cost.total_area_mm2,
                sizing.cost.total_power_w
            ),
            None => println!("{rate:6.0} req/s -> infeasible within 64 chips"),
        }
    }

    // 4. Reactive autoscaling on the bursty front: same p99 discipline,
    //    far fewer chip-seconds than the static peak sizing.
    println!("\n— autoscaling vs static sizing, ON/OFF bursts, p99 <= 150 ms —");
    let scenario = BurstScenario {
        on_rate_rps: 1800.0,
        mean_on_ms: 400.0,
        mean_off_ms: 1200.0,
        horizon_ms: 10_000.0,
        seed,
    };
    let reactive = [
        ScaleKind::QueueDepth {
            up_depth: 4,
            down_depth: 0,
        },
        ScaleKind::UtilizationTarget {
            low: 0.3,
            high: 0.9,
        },
    ];
    match compare_provisioning(
        &chip,
        &TenantMix::single(mix.clone()),
        PolicyKind::SizeClass,
        &scenario,
        150.0,
        32,
        &reactive,
        50.0,
    ) {
        Some(cmp) => {
            for r in &cmp.rows {
                println!(
                    "{:12} mean {:4.2} / peak {:2} chips  {:6.1} chip-s  p99 {:7.2} ms  SLO {}",
                    r.label,
                    r.summary.mean_chips,
                    r.summary.peak_chips,
                    r.chip_seconds,
                    r.summary.p99_latency_ms,
                    if r.meets_slo { "met" } else { "MISSED" },
                );
            }
        }
        None => println!("static sizing infeasible within 32 chips"),
    }

    // 5. Multi-tenant fairness: a flooding wallet fleet vs a light
    //    rollup tenant on the same two chips.
    println!("\n— noisy neighbor: tenant 1 floods 9:1; tenant 2's p99, 2 chips —");
    let flood = TenantMix::new(vec![
        TenantProfile::new(1, 9.0, mix.clone()).with_service_weight(1.0),
        TenantProfile::new(2, 1.0, mix.clone()),
    ]);
    for policy in [PolicyKind::Fifo, PolicyKind::WeightedFair] {
        let mut source = OnOffSource::new(1500.0, 800.0, 800.0, 8_000.0, flood.clone(), seed);
        let cfg = FleetConfig::new(2)
            .with_policy(policy)
            .with_tenant_weights(flood.service_weights());
        let s = simulate(&cfg, &mut source, &mut cost)
            .expect("valid config")
            .summary;
        let light = s
            .per_tenant
            .iter()
            .find(|t| t.tenant == 2)
            .expect("light tenant served");
        println!(
            "{:14} tenant-2 p50 {:7.2} ms  p99 {:7.2} ms  (all-tenant p99 {:7.2} ms)",
            policy.name(),
            light.p50_latency_ms,
            light.p99_latency_ms,
            s.p99_latency_ms
        );
    }

    // 6. Resilience: one of four chips dies for 1.5 s under heavy load.
    //    A fault-blind fleet loses the in-flight batch and serves stale
    //    work; retries plus brown-out shedding keep the goodput up.
    println!("\n— chip failure: 1 of 4 chips down 1.5 s; retries + brown-out —");
    let outage = FaultConfig::scripted(vec![ChipOutage::new(0, 1_000.0, 1_500.0)]);
    let variants: [(&str, FleetConfig); 3] = [
        ("no-failure", FleetConfig::new(4)),
        ("naive", FleetConfig::new(4).with_faults(outage.clone())),
        (
            "resilient",
            FleetConfig::new(4)
                .with_faults(outage)
                .with_retry(RetryPolicy::new(4))
                .with_brown_out(BrownOutConfig::new(1.0, 12)),
        ),
    ];
    // 2000 req/s runs the 4-chip fleet hot enough that losing a chip
    // actually hurts: the survivors cannot also clear the backlog.
    for (label, cfg) in variants {
        let mut source = PoissonSource::new(2_000.0, horizon_ms, mix.clone(), seed);
        let s = simulate(&cfg, &mut source, &mut cost)
            .expect("valid config")
            .summary;
        println!(
            "{label:12} goodput {:7.1}/s  p99 {:8.2} ms  retries {:4}  lost {:3}  shed {:3}",
            s.goodput_rps, s.p99_latency_ms, s.retries, s.lost, s.shed
        );
    }

    // 7. Optional timeline export: the resilient variant again, with
    //    the sim-time recorder on, dumped as a Perfetto-loadable trace.
    if let Some(path) = trace_path {
        let cfg = FleetConfig::new(4)
            .with_faults(FaultConfig::scripted(vec![ChipOutage::new(
                0, 1_000.0, 1_500.0,
            )]))
            .with_retry(RetryPolicy::new(4))
            .with_brown_out(BrownOutConfig::new(1.0, 12))
            .with_telemetry();
        let mut source = PoissonSource::new(2_000.0, horizon_ms, mix.clone(), seed);
        let report = simulate(&cfg, &mut source, &mut cost).expect("valid config");
        let timeline = report.timeline.expect("with_telemetry attaches a timeline");
        match std::fs::write(&path, timeline.to_chrome_trace()) {
            Ok(()) => println!(
                "\nwrote chip-utilization timeline to {path} — open it in Perfetto \
                 (ui.perfetto.dev); the 1000-2500 ms hole in chip 0's track is the outage"
            ),
            Err(e) => eprintln!("\nFAILED to write {path}: {e}"),
        }
    }
}
