//! Exploring the zkPHIRE hardware design space.
//!
//! Runs a thinned Table III sweep, prints the Pareto frontier, and breaks
//! down the exemplar 294 mm² design's area and power (the paper's
//! Fig. 10 / Table V methodology at example scale).
//!
//! ```text
//! cargo run --release -p zkphire-examples --bin design_explorer
//! ```

use zkphire_core::protocol::Gate;
use zkphire_core::system::ZkphireConfig;
use zkphire_core::tech::PrimeMode;
use zkphire_dse::{full_system_dse, DseSpace};

fn main() {
    let mu = 22;
    println!("-- thinned design-space sweep, 2^{mu} Jellyfish gates --");
    let mut space = DseSpace::quick();
    space.sumcheck_pes = vec![2, 8, 16, 32];
    space.msm_pes = vec![4, 8, 16, 32];
    space.bandwidths = vec![256.0, 1024.0, 4096.0];
    println!("evaluating {} configurations...", space.size());
    let dse = full_system_dse(&space, Gate::Jellyfish, mu, true, PrimeMode::Fixed);

    for (bw, front) in space.bandwidths.iter().zip(&dse.tier_fronts) {
        println!("\n{bw:.0} GB/s frontier ({} points):", front.len());
        for p in front.iter().take(6) {
            println!(
                "  {:>8.2} ms  {:>7.1} mm^2  ({} MSM PEs, {} SC PEs, {} trees)",
                p.runtime_ms,
                p.area_mm2,
                p.config.msm.pes,
                p.config.sumcheck.pes,
                p.config.forest.trees
            );
        }
    }

    println!("\n-- exemplar design (paper Table V) --");
    let cfg = ZkphireConfig::exemplar();
    let a = cfg.area();
    let p = cfg.power();
    println!(
        "area  (mm^2): MSM {:.1}, Forest {:.1}, SumCheck {:.1}, other {:.1},",
        a.msm, a.forest, a.sumcheck, a.other
    );
    println!(
        "              SRAM {:.1}, interconnect {:.1}, PHYs {:.1}  => total {:.1}",
        a.sram,
        a.interconnect,
        a.phy,
        a.total()
    );
    println!(
        "power    (W): compute {:.1}, SRAM {:.1}, interconnect {:.1}, HBM {:.1} => total {:.1}",
        p.msm + p.forest + p.sumcheck + p.other,
        p.sram,
        p.interconnect,
        p.hbm,
        p.total()
    );
    println!(
        "forest covers SumCheck product lanes: {} ({} muls vs {} needed)",
        cfg.forest_covers_lanes(),
        cfg.forest.total_muls(),
        cfg.sumcheck.shared_lane_muls()
    );
}
