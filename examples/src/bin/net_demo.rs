//! `net_demo` — put a real TCP front-end on the live proving service
//! and abuse it.
//!
//! Where `serve_demo` drives the service in-process, this example
//! fronts it with `zkphire_serve::NetServer` — a length-prefixed framed
//! protocol over loopback with a bounded handler pool, a hard
//! connection cap, read deadlines, and an idle reaper — and then runs
//! the same walk-through an operator would:
//!
//! 1. start the server on an ephemeral loopback port (the listen
//!    address and every limit are env-tunable, see docs/SERVE.md);
//! 2. submit proofs through a well-behaved `NetClient` and watch the
//!    outcomes stream back as frames, including a tenant-cap rejection
//!    with its retry-after hint;
//! 3. turn the deterministic chaos client loose — garbage bytes, a
//!    slow-loris stall, a mid-proof disconnect, a connection flood —
//!    and print the typed verdict each attack earned;
//! 4. drain gracefully and show that the wire-level counters and the
//!    service's own accounting still agree exactly.
//!
//! Run with `cargo run --release -p zkphire-examples --bin net_demo`.

use std::time::Duration;

use zkphire_core::protocol::Gate;
use zkphire_fleet::RequestClass;
use zkphire_serve::{chaos, ChaosMode, NetClient, NetServer, ServeConfig, ServeOpts, SubmitResult};

fn main() {
    let class = RequestClass::new(Gate::Vanilla, 4);
    let light = 0u32;
    let capped = 1u32;

    println!("zkPHIRE TCP front-end demo");
    println!("class {class}: real HyperPlonk proofs behind a framed wire protocol\n");

    // 1. Start: a tiny pool so the defenses are easy to trip — two
    // connection slots, a 200 ms read deadline for half-sent frames.
    let opts = match ServeOpts::from_env() {
        Ok(o) => o
            .with_prover_threads(1)
            .with_max_batch(4)
            .with_max_conns(2)
            .with_read_timeout_ms(200),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let cfg = ServeConfig::new(vec![class])
        .with_tenant_caps(vec![(capped, 0)])
        .with_seed(2026)
        .with_opts(opts);
    let mut server = match NetServer::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("server failed to start: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    println!(
        "listening on {addr} (max_conns={}, read deadline {} ms, idle reaper {} ms)\n",
        opts.max_conns, opts.read_timeout_ms, opts.idle_timeout_ms
    );

    // 2. A well-behaved client: submits stream back Accepted frames,
    // outcomes stream back as the proofs land, and the zero-cap tenant
    // is refused with a reason and a live retry-after hint.
    let deadline = Duration::from_secs(30);
    let mut client = match NetClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect failed: {e}");
            std::process::exit(1);
        }
    };
    for i in 0..4u32 {
        match client.submit(class, light, deadline) {
            Ok(SubmitResult::Accepted { id, queue_depth }) => {
                println!("submit {i}: accepted as request {id} (queue depth {queue_depth})")
            }
            Ok(SubmitResult::Rejected { reason, .. }) => {
                println!("submit {i}: unexpectedly rejected ({})", reason.as_str())
            }
            Err(e) => {
                eprintln!("submit failed: {e}");
                std::process::exit(1);
            }
        }
    }
    match client.submit(class, capped, deadline) {
        Ok(SubmitResult::Rejected {
            reason,
            retry_after_ms,
        }) => println!(
            "capped tenant: rejected on the wire ({}, retry after {retry_after_ms} ms)",
            reason.as_str()
        ),
        other => println!("capped tenant: unexpected answer {other:?}"),
    }
    let outcomes = match client.finish(deadline) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("drain failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "clean drain: {} outcome frames streamed back\n",
        outcomes.len()
    );

    // 3. Chaos: every attack must end in a typed error frame or a
    // clean close — never a panic, never a wedged slot.
    println!("chaos client, one mode at a time:");
    for (i, mode) in ChaosMode::ALL.into_iter().enumerate() {
        match chaos(addr, mode, 0xC0DE + i as u64, class, &opts) {
            Ok(verdict) => println!("  {:<22} {verdict}", mode.as_str()),
            Err(e) => {
                eprintln!("  {:<22} transport failed: {e}", mode.as_str());
                std::process::exit(1);
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // Still alive? A fresh client gets a slot and a proof.
    let mut probe = match NetClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("post-chaos connect failed: {e}");
            std::process::exit(1);
        }
    };
    let _ = probe.submit(class, light, deadline);
    let proved = probe.finish(deadline).map(|o| o.len()).unwrap_or(0);
    println!("\npost-chaos probe: {proved} proof completed — no wedged slots");

    // 4. Drain: stop accepting, flush in-flight work, reconcile.
    let report = match server.shutdown() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("shutdown failed: {e}");
            std::process::exit(1);
        }
    };
    let s = &report.stats;
    let sum = &report.serve.summary;
    println!("\nwire counters after drain:");
    println!(
        "  conns: {} accepted, {} refused at the cap, {} clean closes",
        s.conns_accepted, s.conns_refused, s.clean_closes
    );
    println!(
        "  closes: {} protocol, {} stalled, {} truncated, {} disconnects, {} idle",
        s.protocol_errors, s.stalled_closes, s.truncated_closes, s.disconnects, s.idle_closes
    );
    println!(
        "  submits: {} seen, {} accepted, {} rejected; outcomes: {} streamed, {} dropped",
        s.submits, s.accepted_submits, s.rejected_submits, s.outcomes_streamed, s.outcomes_dropped
    );
    println!(
        "service accounting: {} arrivals = {} completed + {} rejected + {} shed + {} lost",
        sum.arrivals, sum.completed, sum.rejected, sum.shed, sum.lost
    );
    assert_eq!(sum.lost, 0, "graceful drain loses nothing");
    assert_eq!(
        sum.arrivals,
        sum.completed + sum.rejected + sum.shed + sum.lost,
        "conservation holds with the network in the loop"
    );
    println!("conservation holds — see docs/SERVE.md for the protocol and failure-mode matrix");
}
