//! Quickstart: prove and verify a HyperPlonk circuit end to end.
//!
//! Builds a random satisfied Jellyfish circuit (the high-degree gate set
//! zkPHIRE targets), runs the full five-step prover, verifies the proof,
//! and prints the succinct proof size.
//!
//! ```text
//! cargo run --release -p zkphire-examples --bin quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_hyperplonk::{prove, setup, verify, Circuit, GateSystem};
use zkphire_transcript::Transcript;

fn main() {
    let mu = 8; // 256 gates — laptop-friendly; the models scale to 2^30
    let mut rng = StdRng::seed_from_u64(2026);

    println!("building a random satisfied Jellyfish circuit with 2^{mu} gates...");
    let (circuit, witness) = Circuit::random(GateSystem::Jellyfish, mu, 0.5, &mut rng);
    assert!(circuit.is_satisfied(&witness));

    println!("running universal setup + preprocessing...");
    let (pk, vk) = setup(circuit, &mut rng);

    println!("proving (witness commitments, gate/wire identities, batch openings)...");
    let start = std::time::Instant::now();
    let proof = prove(&pk, &witness, &mut Transcript::new(b"quickstart"));
    let prove_time = start.elapsed();

    let start = std::time::Instant::now();
    verify(&vk, &proof, &mut Transcript::new(b"quickstart")).expect("proof verifies");
    let verify_time = start.elapsed();

    println!();
    println!(
        "proof size:   {} bytes (succinct — independent of witness data)",
        proof.size_bytes()
    );
    println!("prove time:   {prove_time:?}");
    println!("verify time:  {verify_time:?}");
    println!("ok: the verifier accepted without ever seeing the witness.");
}
