//! A private-rollup-style workload: Vanilla vs Jellyfish arithmetization.
//!
//! Proves the same application twice — once with Vanilla Plonk gates and
//! once with the high-degree Jellyfish gates that pack Rescue S-boxes and
//! ECC products into single rows — then extrapolates both to rollup scale
//! with the zkPHIRE performance model (the paper's Table VIII trade).
//!
//! ```text
//! cargo run --release -p zkphire-examples --bin rollup
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_core::protocol::{simulate_protocol, Gate};
use zkphire_core::system::ZkphireConfig;
use zkphire_hyperplonk::{prove, setup, verify, Circuit, GateSystem};
use zkphire_transcript::Transcript;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Functional miniature: the same workload expressed in both gate sets.
    // Jellyfish packs ~2^2 more work per row here (the paper's workloads
    // see 4-32x).
    let vanilla_mu = 8;
    let jellyfish_mu = 6;
    println!("-- functional proofs (miniature) --");
    for (name, system, mu) in [
        ("Vanilla  ", GateSystem::Vanilla, vanilla_mu),
        ("Jellyfish", GateSystem::Jellyfish, jellyfish_mu),
    ] {
        let (circuit, witness) = Circuit::random(system, mu, 0.6, &mut rng);
        let (pk, vk) = setup(circuit, &mut rng);
        let start = std::time::Instant::now();
        let proof = prove(&pk, &witness, &mut Transcript::new(b"rollup"));
        let elapsed = start.elapsed();
        verify(&vk, &proof, &mut Transcript::new(b"rollup")).expect("verifies");
        println!(
            "{name} 2^{mu} gates: proved in {elapsed:>10.2?}, proof {} bytes",
            proof.size_bytes()
        );
    }

    // Modeled at rollup scale: Rollup of 25 private transactions
    // (2^24 Vanilla gates = 2^19 Jellyfish gates, paper Table VIII).
    println!("\n-- zkPHIRE model at rollup scale (exemplar 294 mm^2, 2 TB/s) --");
    let cfg = ZkphireConfig::exemplar();
    let vanilla = simulate_protocol(&cfg, Gate::Vanilla, 24, false);
    let jellyfish = simulate_protocol(&cfg, Gate::Jellyfish, 19, false);
    let jellyfish_masked = simulate_protocol(&cfg, Gate::Jellyfish, 19, true);
    println!("Vanilla   2^24 gates: {:>9.3} ms", vanilla.total_ms);
    println!(
        "Jellyfish 2^19 gates: {:>9.3} ms ({:.2}x)",
        jellyfish.total_ms,
        vanilla.total_ms / jellyfish.total_ms
    );
    println!(
        "  + Masked ZeroCheck: {:>9.3} ms ({:.2}x)",
        jellyfish_masked.total_ms,
        vanilla.total_ms / jellyfish_masked.total_ms
    );
    println!(
        "\nJellyfish step shares: MSM {:.0}%, SumCheck {:.0}%, other {:.0}%",
        100.0 * jellyfish.msm_ms() / jellyfish.total_ms,
        100.0 * jellyfish.sumcheck_ms() / jellyfish.total_ms,
        100.0 * jellyfish.other_ms() / jellyfish.total_ms
    );
}
