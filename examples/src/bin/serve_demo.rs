//! `serve_demo` — operate a *live* zkPHIRE proving service.
//!
//! Where `fleet_sim` simulates a proving fleet, this example runs one:
//! a threaded front-end (`zkphire-serve`) whose workers prove and
//! verify real HyperPlonk instances, behind the same admission,
//! batching, retry, and brown-out policies the simulator models. The
//! walk-through:
//!
//! 1. start the service and read its startup calibration (real
//!    per-class proof latency on this machine);
//! 2. replay a two-tenant Poisson burst through admission, with the
//!    flooding tenant capped — watch its rejections while the light
//!    tenant sails through;
//! 3. inject a worker failure mid-run and let the retry policy rescue
//!    the batch;
//! 4. drain gracefully and print the per-tenant wall-clock quantiles
//!    next to what a DES of the same trace predicts.
//!
//! Run with `cargo run --release -p zkphire-examples --bin serve_demo`.
//! See docs/SERVE.md for the architecture and the sim-vs-wall
//! methodology.

use zkphire_core::costdb::CostModel;
use zkphire_core::protocol::Gate;
use zkphire_fleet::{
    simulate, FleetConfig, PolicyKind, RequestClass, RetryPolicy, SplitMix64, TraceSource,
};
use zkphire_serve::{replay, ProvingService, ServeConfig, ServeOpts};

fn main() {
    let class = RequestClass::new(Gate::Vanilla, 6);
    let light = 0u32;
    let flooder = 1u32;
    let seed = 2026;

    println!("zkPHIRE live proving service demo");
    println!("class {class}: real HyperPlonk proofs, verified per request\n");

    // 1. Start: bake assets, calibrate, spin up the pool.
    let opts = match ServeOpts::from_env() {
        Ok(o) => o.with_max_batch(4),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let workers = opts.workers;
    let cfg = ServeConfig::new(vec![class])
        .with_policy(PolicyKind::WeightedFair)
        .with_tenant_weights(vec![(light, 1.0), (flooder, 1.0)])
        .with_tenant_caps(vec![(flooder, 2)])
        .with_retry(RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 4.0,
            max_backoff_ms: 32.0,
            jitter: 0.25,
        })
        .with_fail_batches(vec![3])
        .with_seed(seed)
        .with_opts(opts);
    let service = match ProvingService::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("service failed to start: {e}");
            std::process::exit(1);
        }
    };
    let calibration = service.calibration();
    let measured_ms = calibration[0].1;
    println!("startup calibration: {measured_ms:.2} ms per proof on {workers} worker(s)");

    // 2. One trace, flooder-heavy: Poisson gaps at ~70% utilization,
    // three flooder arrivals per light one.
    let mut rng = SplitMix64::new(seed);
    let mean_gap_ms = measured_ms / (workers as f64 * 0.7);
    let mut t = 0.0;
    let mut trace = Vec::new();
    for i in 0..60u32 {
        t += -mean_gap_ms * (1.0 - rng.next_f64()).ln();
        let tenant = if i % 4 == 3 { light } else { flooder };
        trace.push((t, class, tenant));
    }
    println!(
        "replaying {} arrivals over {:.0} ms (flooder capped at 2 queued, worker failure at batch 3)\n",
        trace.len(),
        t
    );

    // 3. + 4. Replay, then drain.
    let gen = match replay(
        &service,
        &mut TraceSource::with_tenants(trace.clone()),
        t + 1.0,
        1.0,
    ) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = match service.shutdown() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("shutdown failed: {e}");
            std::process::exit(1);
        }
    };

    // The DES's prediction for the same trace, priced at the
    // calibrated latency.
    let mut cost = CostModel::exemplar();
    cost.pin_proof_ms(class.gate, class.mu, measured_ms);
    let mut fleet_cfg = FleetConfig::new(workers)
        .with_policy(PolicyKind::WeightedFair)
        .with_max_batch(4)
        .with_tenant_weights(vec![(light, 1.0), (flooder, 1.0)])
        .with_tenant_caps(vec![(flooder, 2)]);
    fleet_cfg.batch_overhead_ms = 0.0;
    let sim = simulate(&fleet_cfg, &mut TraceSource::with_tenants(trace), &mut cost);

    println!("live run:");
    println!(
        "  admitted {} / rejected {} (flooder cap) / completed {} / lost {}",
        gen.accepted, gen.rejected, wall.summary.completed, wall.summary.lost
    );
    println!(
        "  worker failures {} / repairs {} / retries {}",
        wall.summary.chip_failures, wall.summary.chip_repairs, wall.summary.retries
    );
    for tenant in &wall.summary.per_tenant {
        let name = if tenant.tenant == light {
            "light  "
        } else {
            "flooder"
        };
        println!(
            "  {name} tenant {}: completed {:3}  rejected {:3}  p50 {:7.2} ms  p99 {:7.2} ms",
            tenant.tenant,
            tenant.completed,
            tenant.rejected,
            tenant.p50_latency_ms,
            tenant.p99_latency_ms
        );
    }
    match sim {
        Ok(sim) => {
            println!("\nDES prediction on the same trace (sim time, calibrated cost):");
            for tenant in &sim.summary.per_tenant {
                let name = if tenant.tenant == light {
                    "light  "
                } else {
                    "flooder"
                };
                println!(
                    "  {name} tenant {}: completed {:3}  rejected {:3}  p50 {:7.2} ms  p99 {:7.2} ms",
                    tenant.tenant,
                    tenant.completed,
                    tenant.rejected,
                    tenant.p50_latency_ms,
                    tenant.p99_latency_ms
                );
            }
            println!(
                "\nsim makespan {:.0} ms vs wall makespan {:.0} ms — the gap is dispatch \
                 overhead and prover variance; see docs/SERVE.md",
                sim.summary.makespan_ms, wall.summary.makespan_ms
            );
        }
        Err(e) => println!("\nDES comparison unavailable: {e}"),
    }
}
