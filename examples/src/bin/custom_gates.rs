//! Programming a custom high-degree gate — the paper's headline use case.
//!
//! Defines a Halo2-style elliptic-curve gate with the [`GateExpr`]
//! language, proves its SumCheck functionally, and then "programs" the
//! modeled accelerator with the same composite to estimate hardware
//! runtime against the CPU baseline at 2^24 constraints.
//!
//! ```text
//! cargo run --release -p zkphire-examples --bin custom_gates
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zkphire_baselines::cpu_sumcheck_ms;
use zkphire_core::memory::MemoryConfig;
use zkphire_core::profile::PolyProfile;
use zkphire_core::sched::schedule;
use zkphire_core::sumcheck_unit::{simulate_sumcheck, SumcheckUnitConfig};
use zkphire_poly::expr::{konst, var};
use zkphire_poly::{sparsity, MleKind};
use zkphire_sumcheck::{prove, verify_with_oracle};
use zkphire_transcript::Transcript;

fn main() {
    // A custom gate in the Halo2 style: q * (y^2 - x^3 - 5) * lambda + q * x * y.
    // Any expression over selectors/witnesses compiles to the same
    // composite IR the accelerator is scheduled from.
    let q = var(0);
    let x = var(1);
    let y = var(2);
    let lambda = var(3);
    let gate = q.clone() * (y.clone().pow(2) - x.clone().pow(3) - konst(5)) * lambda + q * x * y;
    let poly = gate.expand();
    println!(
        "custom gate compiled: {} terms, degree {}, {} constituent MLEs",
        poly.num_terms(),
        poly.degree(),
        poly.num_mles()
    );

    // --- Functional path: prove the SumCheck on real tables. ---
    let mu = 12;
    let kinds = [
        MleKind::Selector,
        MleKind::Witness,
        MleKind::Witness,
        MleKind::Witness,
    ];
    let mut rng = StdRng::seed_from_u64(7);
    let mles = sparsity::random_binding(&mut rng, &kinds, mu);
    let mut tp = Transcript::new(b"custom-gate");
    let out = prove(&poly, mles.clone(), &mut tp);
    let mut tv = Transcript::new(b"custom-gate");
    verify_with_oracle(&poly, &mles, &out.proof, &mut tv).expect("sumcheck verifies");
    println!(
        "functional SumCheck over 2^{mu} entries verified (claim {:?})",
        out.proof.claimed_sum
    );

    // --- Modeled path: program the accelerator with the same composite. ---
    let profile = PolyProfile::from_composite(&poly, &kinds, "custom ECC gate");
    let cfg = SumcheckUnitConfig {
        pes: 16,
        ees: 4,
        pls: 5,
        bank_words: 1 << 13,
        sparse_io: false,
    };
    let plan = schedule(&profile, cfg.ees, false);
    println!(
        "scheduler plan: {} nodes across {} terms, {} Tmp buffer(s), {} lane cycles/pair",
        plan.total_nodes(),
        plan.terms.len(),
        plan.tmp_buffers(),
        plan.cycles_per_pair(cfg.pls)
    );

    let big_mu = 24;
    println!("\nprojected at 2^{big_mu} constraints:");
    for bw in [256.0, 1024.0, 4096.0] {
        let hw = simulate_sumcheck(&profile, big_mu, &cfg, &MemoryConfig::new(bw));
        let cpu = cpu_sumcheck_ms(&profile, big_mu, 4);
        println!(
            "  {bw:>5.0} GB/s: {:>8.2} ms on the unit vs {:>9.0} ms on a 4T CPU ({:>5.0}x, util {:.2})",
            hw.ms(),
            cpu,
            cpu / hw.ms(),
            hw.utilization
        );
    }
}
