//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the (small) subset of the rand 0.8 API the workspace uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `gen_ratio`, `fill_bytes`),
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic
//! and statistically strong enough for test-vector generation, though it
//! is **not** a CSPRNG and the streams differ from upstream `rand`.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain (the rand crate's
/// `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                lo + (reduce_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + reduce_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Debiased uniform draw from `[0, span)` by rejection sampling.
fn reduce_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing sampling helpers, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Bernoulli draw with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        u32::sample_range(self, 0, denominator) < numerator
    }

    /// Fills a byte slice (mirrors `Rng::fill` for `[u8]`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (this shim's "standard" RNG).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with SplitMix64, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..17);
            assert!((10..17).contains(&v));
            let s = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn byte_arrays_fill_fully() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: [u8; 32] = rng.gen();
        let b: [u8; 32] = rng.gen();
        assert_ne!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }
}
