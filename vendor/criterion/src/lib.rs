//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use: `Criterion` / `benchmark_group` / `bench_function` /
//! `bench_with_input` / `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock loop (warm-up, then timed batches
//! until the measurement budget is spent) reporting mean ns/iter and
//! derived throughput — no outlier analysis, plots or saved baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Runs the closure under measurement.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled by `iter`: (total_duration, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, consuming its output via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            std_black_box(routine());
            warm_iters += 1;
        }
        // Pick a batch size so each batch is ~1/sample_size of the budget.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let budget_ns = self.config.measurement_time.as_nanos();
        let total_target = (budget_ns / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;
        let batch = (total_target / self.config.sample_size as u64).max(1);

        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < self.config.measurement_time {
            for _ in 0..batch {
                std_black_box(routine());
            }
            iters += batch;
        }
        self.result = Some((start.elapsed(), iters));
    }
}

#[derive(Clone, Debug)]
struct Config {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 100,
        }
    }
}

/// The harness entry point.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the nominal sample count (here: batch granularity).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            config: None,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_one(&self.config, &id.into_id(), None, f);
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    config: Option<Config>,
}

impl BenchmarkGroup<'_> {
    fn effective(&self) -> Config {
        self.config
            .clone()
            .unwrap_or_else(|| self.criterion.config.clone())
    }

    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let mut cfg = self.effective();
        cfg.sample_size = n;
        self.config = Some(cfg);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        let mut cfg = self.effective();
        cfg.measurement_time = d;
        self.config = Some(cfg);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&self.effective(), &full, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&self.effective(), &full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is immediate; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    config: &Config,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((elapsed, iters)) if iters > 0 => {
            let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.3} Melem/s)", n as f64 / ns_per_iter * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(
                        "  ({:.3} MiB/s)",
                        n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64
                    )
                }
                None => String::new(),
            };
            println!("bench {label:<48} {ns_per_iter:>14.1} ns/iter{rate}  [{iters} iters]");
        }
        _ => println!("bench {label:<48} (no measurement)"),
    }
}

/// Declares a runnable group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).into_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
