//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface this workspace uses:
//! the [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! range and tuple strategies, [`any`], [`prop_oneof!`], and the
//! [`proptest!`] test-runner macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from upstream: no shrinking (failures report the first
//! counterexample as generated), and case generation is deterministic —
//! each test's RNG is seeded from a hash of its name, so failures always
//! reproduce.

use std::rc::Rc;

/// The generator handed to strategies (the vendored deterministic rand).
pub type TestRng = rand::rngs::StdRng;

/// Error raised by a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Runner configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator: the core abstraction.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(self)
    }

    /// Recursive strategies: builds `depth` strata where stratum `i+1`
    /// chooses uniformly between stratum `i` and `recurse(stratum i)`,
    /// so generated structures nest at most `depth` levels and shallow
    /// cases (including bare leaves) stay reachable.
    /// (`_desired_size` / `_expected_branch_size` are accepted for API
    /// compatibility and ignored — there is no size-driven generation.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(level.clone()).boxed();
            level = OneOf::new(vec![level, deeper]).boxed();
        }
        level
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Wraps any concrete strategy.
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        Self {
            gen: Rc::new(move |rng| strategy.gen_value(rng)),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice between boxed alternatives (see [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
        }
    }
}

impl<T> OneOf<T> {
    /// Builds from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: rand::Standard>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// FNV-1a over a test's name: the per-test deterministic seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Uniform choice among strategy expressions of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// `prop_assume!(cond)` — discard the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// The property-test runner: declares each body as a `#[test]` that
/// draws `config.cases` inputs from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::TestRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                let strategies = ($($strategy,)+);
                let mut cases_run = 0u32;
                let mut rejects = 0u32;
                while cases_run < config.cases {
                    if rejects > config.cases.saturating_mul(64) {
                        panic!(
                            "proptest '{}': too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejects
                        );
                    }
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = strategies;
                        ($($arg.gen_value(&mut rng),)+)
                    };
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => cases_run += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => rejects += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed after {} cases: {}",
                                stringify!($name),
                                cases_run,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `use proptest::prelude::*` — matches upstream's import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Pair(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Pair(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -5i64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn recursion_bounded(t in Just(Tree::Leaf(0)).prop_map(|t| t).prop_recursive(
            3, 8, 2,
            |inner| (inner.clone(), inner).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b))),
        )) {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn oneof_and_any(choice in prop_oneof![(0usize..4).prop_map(|v| v * 2), (10usize..12).prop_map(|v| v)], bytes in any::<[u8; 16]>()) {
            prop_assert!(choice < 12);
            prop_assert_eq!(bytes.len(), 16);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}
